"""Program specialization: monomorphic closures compiled from the IR.

The interpreted :class:`~repro.engine.driver.Driver` walks the
:class:`~repro.engine.program.ExecutionProgram` per event: every arrival
pays a dispatch-table ``dict`` lookup, a route lookup through
``self._routes``, and a chain of method calls for the expire → dispatch →
propagate → purge → deliver steps.  The program is *static per query*, so
all of that can be resolved once, at compile time — the move query
compilers make for conjunctive queries under updates (Kara et al.,
arXiv:2206.09032): generate maintenance code specialized to the query
shape instead of interpreting a generic plan.

:func:`specialize_program` derives a pure :class:`SpecializationTable`
from the IR (cached on the program object so the PRG604 lint rule can
re-check exactly what the closures were compiled from), and
:class:`SpecializedDriver` compiles that table into

* **per-stream arrival closures** — leaf stamp/insert, the fused stateless
  prefix, and the residual suffix route all bound into closure locals, in
  per-tuple and micro-batch variants emitted from the same table;
* **a fused event-loop closure** (per-tuple) installed as an instance
  attribute, so ``Executor.run``'s ``process_event`` hoist binds straight
  to it with zero interpretive dispatch;
* **an incrementally maintained expiration boundary** (micro-batch): the
  interpreted loop re-scans every eager participant's ``next_expiry``
  after each pass (O(|expire_ops|), and ``PartitionedBuffer.next_expiry``
  is O(partitions·log n)); the specialized loop keeps one cached boundary
  per eager operator, invalidated only when that operator's state changes
  (stage-input folds during propagation, re-query after its own expire),
  and gates passes on the minimum of the caches.

Exactness.  Per-tuple mode runs the full bottom-up expiration pass before
every event, exactly like the interpreted driver, so answers, output
streams and **all** counters (touches included) are byte-identical.  In
micro-batch mode the per-operator caches are sound lower bounds on each
operator's true next expiry, so productive passes fire at identical event
clocks with identical operator state — answers, output streams and the
structural counters are byte-identical; only the touches/probes accounting
of skipped/spurious no-op passes may differ, the same freedom the
interpreted batched path already has relative to per-tuple execution.

Layer composition.  Checked-mode sanitizer monitors shadow operator
methods and buffers at *compile time*, before any driver exists, so the
bound methods captured here are the monitored ones.  Telemetry composes
the same way it does for the interpreted loops: the micro-batch closure
advances the layer's duty cycle per batch and charges the same timer
registries on timed batches, while telemetry-armed per-tuple execution
runs the reference interpreted loop (whose duty-cycled shadows the
structural tests pin) — byte-identical by the full-pass argument above.
"""

from __future__ import annotations

import math
import time
from typing import NamedTuple, Sequence

from ..errors import ExecutionError
from ..streams.stream import Arrival, Event, RelationUpdate, Tick
from .driver import Driver
from .program import ExecutionProgram

_INF = math.inf


class SpecializationTable(NamedTuple):
    """The pure, IR-derived table the closures are compiled from.

    Everything here is re-derivable from the :class:`ExecutionProgram`;
    keeping it as an explicit object lets PRG604 cross-check the cached
    table against a fresh derivation, so a stale or tampered table cannot
    silently drop steps or routes.
    """

    #: stream name -> tuple[DispatchPlan] (same plans the IR dispatches).
    dispatch: dict
    #: Eager expiration participants, bottom-up (same order as the IR).
    expire_ops: tuple
    #: id(op) -> resolved route to the root, as an immutable tuple.
    routes: dict
    #: The step vocabulary the closures cover, in execution order.
    step_kinds: tuple


def specialize_program(program: ExecutionProgram) -> SpecializationTable:
    """Derive (or return the cached) specialization table for ``program``.

    The table is cached on ``program.specialization`` so every driver
    compiled from one program shares one table, and so the PRG604 lint
    rule inspects the exact object the closures were built from.
    """
    table = program.specialization
    if table is None:
        table = SpecializationTable(
            dispatch={stream: tuple(plans)
                      for stream, plans in program.dispatch.items()},
            expire_ops=tuple(program.expire_ops),
            routes={op_id: tuple(route)
                    for op_id, route in program.routes.items()},
            step_kinds=tuple(step.kind for step in program.steps),
        )
        program.specialization = table
    return table


def make_driver(compiled, program: ExecutionProgram) -> Driver:
    """The driver-selection seam shared by every regime.

    ``ExecutionConfig(specialize=False)`` (CLI ``--no-specialize``) opts
    back into the interpreted reference driver; the default compiles the
    program's specialization table into a :class:`SpecializedDriver` —
    and, unless ``ExecutionConfig(columnar=False)`` (CLI ``--no-columnar``)
    opted out, into its columnar subclass whose micro-batch loop runs over
    struct-of-arrays chunks (:mod:`repro.engine.columnar`).
    """
    if getattr(compiled.config, "specialize", True):
        if getattr(compiled.config, "columnar", True):
            from .columnar import ColumnarDriver
            return ColumnarDriver(compiled, program)
        return SpecializedDriver(compiled, program)
    return Driver(compiled, program)


class SpecializedDriver(Driver):
    """A driver whose event loops are compiled, not interpreted.

    Subclasses :class:`Driver` without overriding any program-step method
    (``_expiration_pass``, ``_dispatch_arrival``, ``_propagate*``,
    ``_maybe_lazy_purge``) — the shared-group runtime and the telemetry
    layer drive those internals directly and must see reference behaviour.
    The specialization lives in two entry points only:

    * ``process_event`` — installed as an *instance-attribute closure*
      while telemetry is off (zero dispatch overhead; the class-level
      slot stays the inherited interpreted method, which is what runs
      while a telemetry layer's duty-cycled shadows are armed);
    * ``process_batch`` — a class-level override running the fused
      micro-batch loop with per-operator expiration-boundary caches, in
      both armed and disarmed telemetry states.
    """

    #: Structural marker for tests and introspection.
    specialized = True

    def __init__(self, compiled, program: ExecutionProgram):
        super().__init__(compiled, program)
        self._table = specialize_program(program)
        self._compile_closures()
        if self._telemetry is None:
            self._install_fast_path()

    # -- closure compilation ----------------------------------------------

    def _compile_closures(self) -> None:
        """Compile the specialization table into this driver's closures.

        Bound methods are resolved *now*, which is safe and deliberate:
        checked-mode monitors shadow ``process``/``process_batch``/
        ``expire`` as instance attributes at compile time (before any
        driver exists), so the captured callables are the monitored ones.
        Closures are rebuilt per driver — no mutable state is shared
        between two drivers compiled from the same program.
        """
        table = self._table
        expire_ops = table.expire_ops
        eager_index = {id(op): i for i, op in enumerate(expire_ops)}
        #: One cached next-expiry lower bound per eager participant;
        #: refreshed from op.next_expiry at batch entry, folded down by
        #: flowing tuples, re-queried (for that op only) after its expire.
        self._boundaries = [-_INF] * len(expire_ops)
        #: (op, bound expire, ((bound process_batch, slot, cache_idx),...))
        self._pass_plan = tuple(
            (op, op.expire, tuple(
                (parent.process_batch, slot,
                 eager_index.get(id(parent), -1))
                for parent, slot in table.routes[id(op)]))
            for op in expire_ops)
        arrivals_pt: dict[str, tuple] = {}
        arrivals_b: dict[str, tuple] = {}
        for stream, plans in table.dispatch.items():
            pt, batched = [], []
            for plan in plans:
                one_pt, one_b = self._compile_arrival(plan, eager_index)
                pt.append(one_pt)
                batched.append(one_b)
            arrivals_pt[stream] = tuple(pt)
            arrivals_b[stream] = tuple(batched)
        self._arrivals_pt = arrivals_pt
        self._arrivals_b = arrivals_b
        self._lazy_check = (self._lazy_interval is not None
                            and bool(self._lazy_ops))
        self._fast_event = self._compile_event_loop()

    def _compile_arrival(self, plan, eager_index):
        """Compile one DispatchPlan into (per-tuple, micro-batch) arrival
        closures with every lookup bound into locals.

        The per-tuple variant mirrors the interpreted
        ``_dispatch_arrival`` (full pass machinery runs per event, so no
        boundary bookkeeping is needed); the micro-batch variant threads
        the global gate through its return value and folds stage-input
        minima into the per-operator boundary caches — but only for
        stages that are eager participants: stateless and lazily-purged
        stages never produce pass output, so scheduling passes for their
        inputs would only add no-ops.
        """
        compiled = self.compiled
        counters = compiled.counters
        view_apply = compiled.view.apply
        subscribers = self._subscribers  # list identity is stable
        leaf = plan.leaf
        stamp = leaf.stamp
        boundaries = self._boundaries

        if not plan.is_window:
            # Unexpected leaf type: generic full-route dispatch, exactly
            # like the interpreted fallback (cold path, never fused).
            process = leaf.process
            route = self._table.routes[id(leaf)]
            stages = tuple((parent.process_batch, slot,
                            eager_index.get(id(parent), -1))
                           for parent, slot in route)

            def generic_pt(values, now):
                outputs = process(0, stamp(values, now, now), now)
                if not outputs:
                    return
                for pb, slot, _idx in stages:
                    outputs = pb(slot, outputs, now)
                    if not outputs:
                        return
                for t in outputs:
                    view_apply(t, now)
                    for callback in subscribers:
                        callback(t, now)

            def generic_b(values, now, gate, op_timers):
                outputs = process(0, stamp(values, now, now), now)
                if not outputs:
                    return gate
                for pb, slot, idx in stages:
                    if idx >= 0:
                        low = _INF
                        for t in outputs:
                            if t.exp < low:
                                low = t.exp
                        if low < boundaries[idx]:
                            boundaries[idx] = low
                            if low < gate:
                                gate = low
                    outputs = pb(slot, outputs, now)
                    if not outputs:
                        return gate
                for t in outputs:
                    view_apply(t, now)
                    for callback in subscribers:
                        callback(t, now)
                return gate

            return generic_pt, generic_b

        store = leaf._store
        prefix = plan.prefix
        suffix = tuple((parent.process_batch, slot,
                        eager_index.get(id(parent), -1))
                       for parent, slot in plan.suffix)
        leaf_idx = eager_index.get(id(leaf), -1)
        leaf_id = id(leaf)
        perf = time.perf_counter

        def window_pt(values, now):
            # Inlined WindowOp arrival (same bookkeeping the interpreted
            # batched loop inlines): clock advance, one tuples_processed
            # charge, store insertion under NT, then the fused prefix.
            t = stamp(values, now, now)
            if now > leaf.clock:
                leaf.clock = now
            counters.tuples_processed += 1
            if store is not None:
                store.insert(t)
            for op, kind, arg in prefix:
                if now > op.clock:
                    op.clock = now
                counters.tuples_processed += 1
                if kind == "filter":
                    if not arg(t.values):
                        return
                elif kind == "map_indices":
                    t = t.with_values(tuple(t.values[i] for i in arg))
                # "pass": forward unchanged
            outputs = [t]
            for pb, slot, _idx in suffix:
                outputs = pb(slot, outputs, now)
                if not outputs:
                    return
            for out in outputs:
                view_apply(out, now)
                for callback in subscribers:
                    callback(out, now)

        def window_b(values, now, gate, op_timers):
            if op_timers is not None:
                t0 = perf()
            t = stamp(values, now, now)
            if now > leaf.clock:
                leaf.clock = now
            counters.tuples_processed += 1
            if store is not None:
                store.insert(t)
            if leaf_idx >= 0:
                # The stamped tuple entered eager window state: lower this
                # leaf's cached boundary (and the global gate) to its exp.
                exp = t.exp
                if exp < boundaries[leaf_idx]:
                    boundaries[leaf_idx] = exp
                    if exp < gate:
                        gate = exp
            for op, kind, arg in prefix:
                if now > op.clock:
                    op.clock = now
                counters.tuples_processed += 1
                if kind == "filter":
                    if not arg(t.values):
                        if op_timers is not None:
                            op_timers[leaf_id].add(perf() - t0)
                        return gate
                elif kind == "map_indices":
                    t = t.with_values(tuple(t.values[i] for i in arg))
            if op_timers is not None:
                # Fused mode attributes stamp + insert + inlined-prefix
                # work to the leaf's timer, like the interpreted loop.
                op_timers[leaf_id].add(perf() - t0)
            outputs = [t]
            for pb, slot, idx in suffix:
                if idx >= 0:
                    low = _INF
                    for out in outputs:
                        if out.exp < low:
                            low = out.exp
                    if low < boundaries[idx]:
                        boundaries[idx] = low
                        if low < gate:
                            gate = low
                outputs = pb(slot, outputs, now)
                if not outputs:
                    return gate
            for out in outputs:
                view_apply(out, now)
                for callback in subscribers:
                    callback(out, now)
            return gate

        return window_pt, window_b

    def compiled_closures(self):
        """``(name, closure)`` pairs for every compiled closure, without
        executing anything — the ALS702 ownership rule walks their
        ``__closure__`` cells to prove no stale specialization table or
        pre-seal plan object was captured."""
        yield "fast_event", self._fast_event
        for stream, fns in self._arrivals_pt.items():
            for i, fn in enumerate(fns):
                yield f"arrival_pt:{stream}[{i}]", fn
        for stream, fns in self._arrivals_b.items():
            for i, fn in enumerate(fns):
                yield f"arrival_b:{stream}[{i}]", fn

    def introspection_roots(self) -> dict:
        roots = super().introspection_roots()
        roots["boundaries"] = self._boundaries
        return roots

    def _compile_event_loop(self):
        """Compile the fused per-tuple event loop: one closure covering
        expire → dispatch → propagate → purge → deliver with every step
        resolved into locals.  Semantically identical to the interpreted
        ``Driver.process_event`` (full pass per event, same bottom-up
        order, same dispatch), minus the interpretive lookups."""
        driver = self
        compiled = self.compiled
        view_apply = compiled.view.apply
        view_purge = compiled.view.purge
        subscribers = self._subscribers
        time_domain = self._time_domain
        clock_for = self._clock_for
        dispatch_relation_update = self._dispatch_relation_update
        maybe_lazy_purge = self._maybe_lazy_purge
        lazy_check = self._lazy_check
        get_plans = self._arrivals_pt.get
        pass_plan = self._pass_plan

        def process_event(event: Event) -> None:
            now = event.ts if time_domain else clock_for(event)
            if now < driver.now:
                raise ExecutionError(
                    f"out-of-order event: ts {now} after clock "
                    f"{driver.now} (the model assumes non-decreasing "
                    "timestamps, Section 2)"
                )
            driver.now = now
            driver._events_processed += 1
            # Full bottom-up expiration pass (the per-tuple schedule).
            for _op, expire, stages in pass_plan:
                outputs = expire(now)
                if outputs:
                    for pb, slot, _idx in stages:
                        outputs = pb(slot, outputs, now)
                        if not outputs:
                            break
                    else:
                        for t in outputs:
                            view_apply(t, now)
                            for callback in subscribers:
                                callback(t, now)
            view_purge(now)
            if isinstance(event, Arrival):
                driver._tuples_arrived += 1
                plans = get_plans(event.stream)
                if plans is not None:
                    values = event.values
                    for fn in plans:
                        fn(values, now)
            elif isinstance(event, RelationUpdate):
                dispatch_relation_update(event, now)
            elif isinstance(event, Tick):
                pass
            else:  # pragma: no cover - event model is closed
                raise ExecutionError(
                    f"unknown event type {type(event).__name__}")
            if lazy_check:
                maybe_lazy_purge(now)

        return process_event

    # -- fast-path installation -------------------------------------------

    def _install_fast_path(self) -> None:
        """Install the fused per-tuple loop as an instance attribute (so
        ``Executor.run``'s hoist binds the closure directly) and refresh
        the per-operator boundary caches from live state — they may be
        stale after a stretch of interpreted/armed execution."""
        self.process_event = self._fast_event
        now = self.now
        boundaries = self._boundaries
        for i, (op, _expire, _stages) in enumerate(self._pass_plan):
            boundaries[i] = op.next_expiry(now)

    # -- micro-batch loop ---------------------------------------------------

    def process_batch(self, events: Sequence[Event]) -> None:
        """The fused micro-batch loop with per-operator boundary caches.

        Same amortized schedule contract as the interpreted
        ``Driver.process_batch`` — an expiration pass runs at exactly the
        clock of the event that crosses the boundary — but the boundary is
        the minimum over per-operator caches maintained incrementally, and
        each pass visits only the operators whose cache has been reached
        (the skipped ones provably have nothing to expire).
        """
        if not events:
            return
        compiled = self.compiled
        view_apply = compiled.view.apply
        subscribers = self._subscribers
        time_domain = self._time_domain
        clock_for = self._clock_for
        lazy_check = self._lazy_check
        maybe_lazy_purge = self._maybe_lazy_purge
        # Telemetry: advance the duty cycle per batch, like the
        # interpreted loop; timed batches charge the same registries.
        if self._telemetry is not None:
            self._layer.advance(self)
        timing = self._timing
        op_timers = compiled.op_timers if timing else None
        expire_timers = compiled.op_expire_timers if timing else None
        get_plans = self._arrivals_b.get
        pass_plan = self._pass_plan
        boundaries = self._boundaries
        run_pass = self._run_pass
        events_processed = self._events_processed
        tuples_arrived = self._tuples_arrived
        # Re-anchor the caches on live state once per batch (the
        # interpreted path's per-batch _compute_next_expiry, distributed
        # per operator); inside the batch they are maintained
        # incrementally instead of rescanned after every pass.
        now = self.now
        gate = _INF
        for i, (op, _expire, _stages) in enumerate(pass_plan):
            low = op.next_expiry(now)
            boundaries[i] = low
            if low < gate:
                gate = low
        try:
            for event in events:
                now = event.ts if time_domain else clock_for(event)
                if now < self.now:
                    raise ExecutionError(
                        f"out-of-order event: ts {now} after clock "
                        f"{self.now} (the model assumes non-decreasing "
                        "timestamps, Section 2)"
                    )
                self.now = now
                events_processed += 1
                if now >= gate:
                    gate = run_pass(now, expire_timers)
                if isinstance(event, Arrival):
                    tuples_arrived += 1
                    plans = get_plans(event.stream)
                    if plans is not None:
                        values = event.values
                        for fn in plans:
                            gate = fn(values, now, gate, op_timers)
                elif isinstance(event, RelationUpdate):
                    self._dispatch_relation_update(event, now)
                    # Relation deltas may land anywhere in the pipeline:
                    # re-anchor every cache on live state (rare event).
                    gate = _INF
                    for i, (op, _expire, _stages) in enumerate(pass_plan):
                        low = op.next_expiry(now)
                        boundaries[i] = low
                        if low < gate:
                            gate = low
                elif isinstance(event, Tick):
                    pass
                else:  # pragma: no cover - event model is closed
                    raise ExecutionError(
                        f"unknown event type {type(event).__name__}")
                if lazy_check:
                    maybe_lazy_purge(now)
        finally:
            self._events_processed = events_processed
            self._tuples_arrived = tuples_arrived
        # One amortized view purge per batch, as in the interpreted loop.
        compiled.view.purge(self.now)
        self._next_expiry = gate  # coherence for external readers
        if timing:
            self._layer.sample(self)

    def _run_pass(self, now: float, expire_timers) -> float:
        """One boundary-triggered expiration pass, visiting only the
        operators whose cached boundary has been reached.

        A skipped operator's cache is a sound lower bound on its true next
        expiry, so cache > now proves it has nothing to expire — visiting
        it would be a no-op (the interpreted pass does exactly that and
        charges the no-op probe as a touch; the structural counters and
        outputs are unaffected either way).  Visited operators re-query
        their own ``next_expiry`` afterwards, which also captures state
        they created *during* expire (e.g. dup-elim promotions).
        """
        boundaries = self._boundaries
        compiled = self.compiled
        view_apply = compiled.view.apply
        subscribers = self._subscribers
        timing = expire_timers is not None
        if timing:
            perf = time.perf_counter
            pass_start = perf()
        for i, (op, expire, stages) in enumerate(self._pass_plan):
            if boundaries[i] <= now:
                if timing:
                    t0 = perf()
                    outputs = expire(now)
                    expire_timers[id(op)].add(perf() - t0)
                else:
                    outputs = expire(now)
                if outputs:
                    for pb, slot, idx in stages:
                        if idx >= 0:
                            low = _INF
                            for t in outputs:
                                if t.exp < low:
                                    low = t.exp
                            if low < boundaries[idx]:
                                boundaries[idx] = low
                        outputs = pb(slot, outputs, now)
                        if not outputs:
                            break
                    else:
                        for t in outputs:
                            view_apply(t, now)
                            for callback in subscribers:
                                callback(t, now)
                boundaries[i] = op.next_expiry(now)
        compiled.view.purge(now)
        if timing:
            elapsed = perf() - pass_start
            layer = self._layer
            layer._pass_timer.add(elapsed)
            layer._pass_gauge.set(elapsed)
        return min(boundaries, default=_INF)

    # -- instrumentation layering ------------------------------------------

    def arm_telemetry(self) -> None:
        """Arm the telemetry layer and route per-tuple execution back
        through the reference interpreted loop (whose duty-cycled step
        shadows the layer installs); the micro-batch loop stays
        specialized and charges the layer's registries natively."""
        self.__dict__.pop("process_event", None)
        super().arm_telemetry()

    def disarm_telemetry(self) -> None:
        """Disarm telemetry and restore the fused per-tuple fast path
        (with freshly re-anchored boundary caches)."""
        super().disarm_telemetry()
        if self._telemetry is None:
            self._install_fast_path()
