"""Key-sharded parallel execution: router, deterministic merger, backends.

The partitionability analysis (:mod:`repro.core.sharding`) proves that for
a keyed plan, routing every arrival by a hash of its shard key splits the
workload into ``k`` *independent* replicas of the compiled pipeline: no
stored tuple in shard ``i`` can ever join with, cancel, or deduplicate
against a tuple in shard ``j``.  This module turns that proof into an
executor:

* :class:`ShardRouter` — assigns each :class:`Arrival` to
  ``stable_hash(key) % k``.  The hash is :func:`zlib.crc32` over ``repr``
  of the key, *not* Python's ``hash()``, which is seed-randomized across
  processes and would break worker/parent agreement and run-to-run
  determinism.
* **Tick broadcast** — every shard sees the *full* global event timeline:
  an arrival routed elsewhere is demoted to a :class:`Tick` carrying the
  same timestamp.  This keeps all shard clocks in lockstep with the
  unsharded executor, so eager-expiration passes, negative-tuple emission
  times, and the lazy-purge grid (anchored at the first event's clock) fire
  at exactly the clocks they would unsharded.
* :class:`_Merger` — merges per-shard output streams deterministically by
  ``(now, shard, shard-local sequence)``.  Event-clock order is globally
  correct; *within* one instant the canonical shard-major order replaces
  the unsharded emission interleaving, and the per-instant output multiset
  is identical to unsharded execution (DESIGN.md gives the argument; the
  hypothesis suite in ``tests/test_sharded.py`` checks it).  Streaming is
  preserved by a holdback rule: after each routed chunk, every output with
  ``now`` strictly below the chunk's last timestamp is final and flushed —
  making the merged stream invariant under chunk size and backend.
* Two backends — :class:`_SerialShards` runs the ``k`` pipelines in-process
  (exactness testing, counter decomposition, zero IPC), and
  :class:`_ProcessShards` forks one worker per shard and ships micro-batch
  chunks over pipes using compact tuple encodings (``Tuple`` forbids
  ``__setattr__`` and so cannot round-trip through default slot-restoring
  pickle; compact tuples are also smaller and faster).  Workers are built
  by *fork inheritance* — plans may close over lambdas, which never need to
  be pickled because the 'fork' start method copies them into the child.

Exactness vs. unsharded execution (checked by tests, argued in DESIGN.md):
answers, per-instant output multisets, and view snapshots are identical;
counters decompose exactly (unsharded total = Σ shard totals) for the
structural counters (inserts, deletes, expirations, probes,
tuples_processed, negatives_processed, results_produced).  ``touches`` also
decomposes exactly in tuple-at-a-time mode under NT and DIRECT; under UPA
the partitioned buffer's ``log2(partition length)`` bisect charge depends
on per-shard occupancy, and in micro-batch mode the per-shard expiration
*boundaries* differ from the global one, so scan charges shift — the
speedup measured by benchmark E13 is exactly this removed work.

Plans the analysis rejects (count windows, relation joins, shared scans,
keyless aggregation) **fall back** to ordinary unsharded execution; the
returned result records the reason, and ``explain()`` carries the same
note.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from collections import Counter as Multiset
from itertools import islice
from typing import Callable, Iterable, Iterator, Sequence

from ..core.metrics import Counters
from ..core.plan import LogicalNode
from ..core.sharding import (
    Partitionability,
    StreamShardKey,
    analyze_partitionability,
)
from ..core.tuples import Tuple
from ..errors import ExecutionError
from ..streams.stream import Arrival, Event, RelationUpdate, Tick
from ..analysis.sanitizer import verify_drain
from .columnar import decode_routed, encode_routed, stable_hash
from .driver import Driver
from .executor import Executor
from .program import build_program
from .specialize import make_driver
from .strategies import ExecutionConfig, compile_plan

#: Events shipped per backend step when no micro-batch size is given.
DEFAULT_CHUNK = 256

SERIAL = "serial"
PROCESS = "process"
_BACKENDS = (SERIAL, PROCESS)


def _compile_driver(plan: LogicalNode, config: ExecutionConfig) -> Driver:
    """Compile one shard replica straight to a program-running driver.

    Shard pipelines never need the Executor façade's run-level
    orchestration (timing, shard delegation, RunResult) — the sharded
    executor owns those — so workers ship and run the program directly.
    """
    compiled = compile_plan(plan, config)
    return make_driver(compiled, build_program(compiled))


def _chunked(events: Iterable[Event], size: int) -> Iterator[list[Event]]:
    if type(events) is list:
        # Traces usually arrive as lists already: slice directly instead of
        # re-materializing every chunk through an iterator + islice copy.
        for start in range(0, len(events), size):
            yield events[start:start + size]
        return
    iterator = iter(events)
    while True:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        yield chunk


class ShardRouter:
    """Routes events to shards by key hash; foreign arrivals become ticks."""

    def __init__(self, keys: dict[str, StreamShardKey], n_shards: int):
        if n_shards < 1:
            raise ExecutionError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        #: stream -> key column index (None = hash the full value tuple).
        self._index: dict[str, int | None] = {
            name: sk.index for name, sk in keys.items()
        }
        self.per_shard_arrivals = [0] * n_shards
        self.broadcasts = 0

    def shard_of(self, event: Event) -> int | None:
        """Shard index for an arrival; None for broadcast events.

        Streams the plan does not reference route by their full value tuple
        (like analysis-free streams — any placement is correct, and the
        unsharded executor ignores them identically)."""
        if isinstance(event, Arrival):
            index = self._index.get(event.stream)
            key = event.values if index is None else event.values[index]
            return stable_hash(key) % self.n_shards
        return None

    def route_chunk(self, chunk: Sequence[Event]) -> list[list[Event]]:
        """Split one global chunk into per-shard chunks of equal length.

        Every shard receives every timeline position: its own arrivals
        verbatim, everyone else's as a :class:`Tick` at the same timestamp
        (clock-lockstep; see the module docstring).  Ticks and relation
        updates broadcast to all shards.
        """
        per: list[list[Event]] = [[] for _ in range(self.n_shards)]
        per_shard_arrivals = self.per_shard_arrivals
        for event in chunk:
            target = self.shard_of(event)
            if target is None:
                self.broadcasts += 1
                for shard in per:
                    shard.append(event)
            else:
                per_shard_arrivals[target] += 1
                tick = Tick(event.ts)
                for i, shard in enumerate(per):
                    shard.append(event if i == target else tick)
        return per


# -- output collection and deterministic merge --------------------------------


class _ShardCollector:
    """Subscriber that tags a shard's output stream with local sequence
    numbers (the within-shard order is exactly the unsharded emission order
    restricted to that shard's tuples)."""

    __slots__ = ("items", "_seq")

    def __init__(self) -> None:
        self.items: list[tuple[float, int, Tuple]] = []
        self._seq = 0

    def __call__(self, t: Tuple, now: float) -> None:
        self.items.append((now, self._seq, t))
        self._seq += 1

    def drain(self) -> list[tuple[float, int, Tuple]]:
        items = self.items
        self.items = []
        return items


class _Merger:
    """Deterministic merge of per-shard output streams.

    Delivery order is ``(now, shard, local sequence)``: globally ordered by
    event clock, canonically shard-major within an instant.  The holdback
    flush keeps the merge streaming *and* chunk-size-invariant: an output at
    clock ``c`` is final once every shard's clock has passed ``c``, which is
    guaranteed after processing a chunk whose last event has ``ts > c``
    (tick broadcast keeps all shard clocks equal to the global clock).
    """

    def __init__(self, subscribers: Sequence[Callable[[Tuple, float], None]]):
        self._subscribers = list(subscribers)
        self._pending: list[tuple[float, int, int, Tuple]] = []

    @property
    def active(self) -> bool:
        return bool(self._subscribers)

    def add(self, shard: int, items: Iterable[tuple[float, int, Tuple]]) -> None:
        if not self._subscribers:
            return
        self._pending.extend(
            (now, shard, seq, t) for now, seq, t in items
        )

    def flush_below(self, boundary: float) -> None:
        """Deliver every pending output with ``now`` strictly below
        ``boundary`` (outputs at the boundary instant may still gain
        same-instant siblings from later events at the same timestamp)."""
        if not self._pending:
            return
        self._pending.sort()
        cut = 0
        for record in self._pending:
            if record[0] < boundary:
                cut += 1
            else:
                break
        if cut:
            self._deliver(self._pending[:cut])
            self._pending = self._pending[cut:]

    def finish(self) -> None:
        self._pending.sort()
        self._deliver(self._pending)
        self._pending = []

    def _deliver(self, records) -> None:
        subscribers = self._subscribers
        for now, _shard, _seq, t in records:
            for subscriber in subscribers:
                subscriber(t, now)


# -- compact IPC encodings -----------------------------------------------------
#
# Tuple is an immutable __slots__ class whose __setattr__ raises, so default
# pickling (which restores slots via setattr) cannot round-trip it; events
# carry little data anyway.  Plain tuples keep messages small and fast.


def _encode_event(event: Event):
    if isinstance(event, Arrival):
        return ("a", event.ts, event.stream, event.values)
    if isinstance(event, Tick):
        return ("t", event.ts)
    if isinstance(event, RelationUpdate):
        return ("r", event.ts, event.relation, event.op, event.values)
    raise ExecutionError(f"unknown event type {type(event).__name__}")


def _decode_event(record) -> Event:
    tag = record[0]
    if tag == "a":
        return Arrival(record[1], record[2], record[3])
    if tag == "t":
        return Tick(record[1])
    return RelationUpdate(record[1], record[2], record[3], record[4])


def _encode_outputs(items: list[tuple[float, int, Tuple]]):
    return [(now, seq, t.values, t.ts, t.exp, t.sign)
            for now, seq, t in items]


def _decode_outputs(payload) -> list[tuple[float, int, Tuple]]:
    return [(now, seq, Tuple(values, ts, exp, sign))
            for now, seq, values, ts, exp, sign in payload]


class _ShardFinal:
    """Per-shard end-of-run report."""

    __slots__ = ("answer", "counters", "events_processed", "tuples_arrived",
                 "state_size", "metrics")

    def __init__(self, answer: Multiset, counters: dict,
                 events_processed: int, tuples_arrived: int,
                 state_size: int, metrics: list | None = None):
        self.answer = answer
        self.counters = counters
        self.events_processed = events_processed
        self.tuples_arrived = tuples_arrived
        self.state_size = state_size
        #: Telemetry snapshot (plain records; picklable) or None when off.
        self.metrics = metrics


def _final_metrics(driver: Driver) -> list | None:
    """Finish-time telemetry snapshot of one shard pipeline.

    Shard pipelines are driven through ``process_batch``/``process_event``
    rather than :meth:`Executor.run`, so the end-of-run bookkeeping that
    ``run`` performs (final state sample, event/tuple gauges, layer
    teardown) happens via :meth:`Driver.finalize_telemetry`.  Returns plain
    snapshot records — what the process backend ships over its pipe — or
    None when telemetry is off.
    """
    registry = driver.finalize_telemetry()
    if registry is None:
        return None
    return registry.snapshot()


# -- backends ------------------------------------------------------------------


class _SerialShards:
    """k in-process program replicas fed round-robin in shard order.

    The reference backend: no IPC, exact per-shard counters, and the
    driver objects stay inspectable after the run (tests read the shard
    views directly)."""

    def __init__(self, plan: LogicalNode, config: ExecutionConfig,
                 n_shards: int, batch: int | None, collect: bool):
        self._batch = batch
        self.drivers: list[Driver] = []
        self._collectors: list[_ShardCollector] = []
        for _ in range(n_shards):
            driver = _compile_driver(plan, config)
            collector = _ShardCollector()
            if collect:
                driver.subscribe(collector)
            self.drivers.append(driver)
            self._collectors.append(collector)

    def feed(self, per_shard: list[list[Event]]
             ) -> list[list[tuple[float, int, Tuple]]]:
        batch = self._batch
        outputs = []
        for driver, collector, events in zip(
                self.drivers, self._collectors, per_shard):
            if batch is not None and batch > 1:
                driver.process_batch(events)
            else:
                process = driver.process_event
                for event in events:
                    process(event)
            outputs.append(collector.drain())
        return outputs

    def feed_chunk(self, chunk: Sequence[Event], router: "ShardRouter"
                   ) -> list[list[tuple[float, int, Tuple]]]:
        return self.feed(router.route_chunk(chunk))

    def finish(self) -> list[_ShardFinal]:
        for driver in self.drivers:
            # Checked execution: each replica owns its own sanitizer (the
            # replicas are driven through process_batch, not run()), so the
            # drain-time conservation check must run here.
            verify_drain(driver.compiled)
        return [
            _ShardFinal(driver.answer(),
                        driver.compiled.counters.snapshot(),
                        driver._events_processed,
                        driver.tuples_arrived,
                        driver.compiled.state_size(),
                        _final_metrics(driver))
            for driver in self.drivers
        ]


#: Capacity of each worker's reusable shared-memory segment (1 MiB holds
#: thousands of DEFAULT_CHUNK-sized rows; oversize chunks fall back to the
#: pickle pipe per chunk, so the bound is a fast path, not a limit).
_SHM_CAPACITY = 1 << 20


class _ShmArena:
    """Reusable shared-memory segments for the zero-pickle chunk transport.

    Created by the parent *before* forking so every worker inherits the
    mapping directly — no name attach, no per-chunk allocation.  The fused
    routed transport writes ONE payload per global chunk that every worker
    reads, so a single segment serves the whole pool; the protocol is
    synchronous per chunk (the parent never overwrites the segment until
    every worker's reply for the previous chunk arrived, and workers
    finish their lazy column decodes before replying), so the one segment
    is reused for the whole run.

    Cleanup is defensive in depth: ``close()`` runs on the normal finish
    path, on every pool abort, and from an ``atexit`` hook — PID-guarded,
    because forked workers inherit the parent's atexit registrations and
    must never unlink segments they do not own.
    """

    def __init__(self, n_segments: int, capacity: int = _SHM_CAPACITY):
        from multiprocessing import shared_memory
        self.capacity = capacity
        self._pid = os.getpid()
        self._closed = False
        self.segments = []
        try:
            for _ in range(n_segments):
                self.segments.append(
                    shared_memory.SharedMemory(create=True, size=capacity))
        except (OSError, ValueError):
            self.close()
            raise
        atexit.register(self.close)

    def write(self, index: int, payload: bytes) -> None:
        self.segments[index].buf[:len(payload)] = payload

    def close(self) -> None:
        """Close and unlink every segment exactly once, creator-only."""
        if self._closed or os.getpid() != self._pid:
            return
        self._closed = True
        for shm in self.segments:
            try:
                shm.close()
            except (BufferError, OSError):  # pragma: no cover - defensive
                pass
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass


def _shard_worker_main(conn, plan: LogicalNode, config: ExecutionConfig,
                       batch: int | None, collect: bool,
                       shm=None) -> None:
    """Worker loop for one forked shard process.

    Built from fork-inherited arguments — the plan (which may close over
    lambdas in predicates) is never pickled.  Protocol: ``("chunk",
    events)`` → ``("out", outputs)``; ``("cshard", nbytes, header)`` →
    ``("out", outputs)`` after decoding this shard's slice of the shared
    routed payload in place from the fork-inherited shared-memory segment
    (column materialization is lazy, but always completes before the
    reply, so the parent may overwrite the segment as soon as every reply
    is in); ``("finish",)`` → ``("fin", answer items, counter snapshot,
    events, tuples, state size)``.  Any exception is reported as
    ``("err", message)`` and ends the worker.
    """
    try:
        driver = _compile_driver(plan, config)
        collector = _ShardCollector()
        if collect:
            driver.subscribe(collector)
        process_chunk = getattr(driver, "process_chunk", None)
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "chunk":
                events = [_decode_event(r) for r in message[1]]
                if batch is not None and batch > 1:
                    driver.process_batch(events)
                else:
                    process = driver.process_event
                    for event in events:
                        process(event)
                conn.send(("out", _encode_outputs(collector.drain())))
            elif tag == "cshard":
                table = decode_routed(shm.buf[:message[1]], message[2])
                if (batch is not None and batch > 1
                        and process_chunk is not None):
                    process_chunk(table)
                else:
                    events = table.to_events()
                    if batch is not None and batch > 1:
                        driver.process_batch(events)
                    else:
                        process = driver.process_event
                        for event in events:
                            process(event)
                # Drop the table (and its memoryview over the segment)
                # before replying, so shutdown can unmap the segment.
                del table
                conn.send(("out", _encode_outputs(collector.drain())))
            elif tag == "finish":
                # Checked execution: violations raised here propagate to the
                # parent as an ("err", ...) reply via the handler below.
                verify_drain(driver.compiled)
                conn.send((
                    "fin",
                    list(driver.answer().items()),
                    driver.compiled.counters.snapshot(),
                    driver._events_processed,
                    driver.tuples_arrived,
                    driver.compiled.state_size(),
                    _final_metrics(driver),
                ))
                conn.close()
                return
            else:  # pragma: no cover - closed protocol
                raise ExecutionError(f"unknown worker message {tag!r}")
    # Broad catch is required at this worker boundary: ANY exception type —
    # ExecutionError, PatternViolation, a predicate's ValueError, even
    # MemoryError — must be serialized into an ("err", ...) reply, because
    # an exception object cannot cross the pipe and an unreported death
    # surfaces to the parent only as an opaque EOFError.  The regression
    # test for this path is tests/test_failure_injection.py.
    except Exception as exc:  # pragma: no cover - exercised via parent raise
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
            conn.close()
        except (BrokenPipeError, OSError):
            # The parent end is gone, so the failure cannot be reported over
            # the pipe; re-raise the *original* error so the worker exits
            # nonzero instead of masking it behind a clean exit.
            raise exc


class _WorkerPool:
    """Shared plumbing of the forked-worker backends: spawn, ship, receive,
    and — crucially — *fail loudly*.

    A worker that dies mid-protocol (killed, OOMed, or crashed before it
    could send an ``("err", ...)`` report) closes its pipe; the parent sees
    that as :class:`EOFError`/:class:`OSError` on the next ``recv`` or
    ``send`` and must not merge the truncated output as a success.  Every
    failure path aborts the whole pool (terminate + reap) before raising,
    so no zombie workers outlive the run.
    """

    #: Prefix of parent-side failure messages (subclasses override).
    what = "shard worker"
    #: Seconds a worker gets to exit after its "fin" reply before the
    #: parent escalates (class attribute so tests can shrink it).
    join_grace = 30.0
    #: Seconds granted after terminate() before kill().
    reap_grace = 5.0

    def __init__(self) -> None:
        self._connections = []
        self._processes = []

    def _spawn(self, context, target, args_for, n: int) -> None:
        for index in range(n):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=target, args=args_for(child_conn, index), daemon=True)
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)

    def _send(self, conn, message) -> None:
        try:
            conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            self._abort()
            raise ExecutionError(
                f"{self.what} died (pipe closed while sending "
                f"{message[0]!r}): {type(exc).__name__}") from exc

    def _receive(self, conn):
        try:
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            # Worker vanished without an ("err", ...) report — e.g. killed
            # by a signal.  Abort the pool and surface it immediately
            # rather than merging partial output.
            self._abort()
            raise ExecutionError(
                f"{self.what} died mid-protocol (pipe closed before "
                f"reply): {type(exc).__name__}") from exc
        if reply[0] == "err":
            self._abort()
            raise ExecutionError(f"{self.what} failed: {reply[1]}")
        return reply

    def _abort(self) -> None:
        """Force-shutdown every worker: close pipes, terminate, reap."""
        for conn in self._connections:
            try:
                conn.close()
            except (BrokenPipeError, OSError):  # pragma: no cover - racing close
                pass
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        self._reap()

    def _reap(self) -> None:
        """Join every worker; escalate terminate → kill for stragglers."""
        for process in self._processes:
            process.join(timeout=self.reap_grace)
            if process.is_alive():  # pragma: no cover - needs a wedged child
                process.kill()
                process.join(timeout=self.reap_grace)

    def _join_all(self) -> None:
        """End-of-run reap: verify every worker actually exited.

        A worker that survives the grace period is terminated, killed if
        necessary, reaped, and *reported* — the old code joined with a
        timeout but never checked ``is_alive()``, so a hung worker leaked
        a zombie process while the run reported success.
        """
        for process in self._processes:
            process.join(timeout=self.join_grace)
        hung = sum(1 for process in self._processes if process.is_alive())
        if hung:
            self._abort()
            raise ExecutionError(
                f"{hung} {self.what}(s) failed to exit within "
                f"{self.join_grace:g}s of finishing; terminated and reaped")


class _ProcessShards(_WorkerPool):
    """k forked worker processes, one pipeline replica each.

    The parent sends every shard its chunk *before* collecting any reply, so
    all workers compute concurrently while the parent waits.  Chunk
    transport is zero-pickle by default, and *fused*: the parent
    struct-packs each routed chunk ONCE
    (:func:`~repro.engine.columnar.encode_routed`) — shared ``ts``
    timeline, every stream's value columns concatenated shard-major — into
    one reusable fork-inherited shared-memory segment, and each pipe
    carries only a tiny ``("cshard", nbytes, header)`` message whose
    header lists the shard's contiguous ``(stream, offset, count)`` slices
    plus their row indices.  Workers decode their slices in place,
    lazily per stream.  Chunks the codec cannot represent (relation
    updates, oversize payloads) and ``columnar=False`` runs fall back to
    the compact-tuple pickle pipe per chunk.
    """

    what = "shard worker"

    def __init__(self, plan: LogicalNode, config: ExecutionConfig,
                 n_shards: int, batch: int | None, collect: bool):
        super().__init__()
        context = multiprocessing.get_context("fork")
        arena = None
        if getattr(config, "columnar", True):
            try:
                arena = _ShmArena(1)
            except (ImportError, OSError, ValueError):
                arena = None  # no shm on this platform: pickle transport
        self._arena = arena
        segment = arena.segments[0] if arena is not None else None
        self._spawn(
            context, _shard_worker_main,
            lambda child_conn, i: (child_conn, plan, config, batch, collect,
                                   segment),
            n_shards)

    def feed(self, per_shard: list[list[Event]]
             ) -> list[list[tuple[float, int, Tuple]]]:
        """Pickle-pipe fallback path: compact-tuple chunks, one per shard."""
        for conn, events in zip(self._connections, per_shard):
            self._send(conn,
                       ("chunk", [_encode_event(e) for e in events]))
        return [_decode_outputs(self._receive(conn)[1])
                for conn in self._connections]

    def feed_chunk(self, chunk: Sequence[Event], router: "ShardRouter"
                   ) -> list[list[tuple[float, int, Tuple]]]:
        """Ship one global chunk: fused routed shm transport when the
        codec can represent it, ``route_chunk`` + pickle pipe otherwise."""
        arena = self._arena
        if arena is not None:
            encoded = encode_routed(chunk, router._index, router.n_shards)
            if encoded is not None and len(encoded[0]) <= arena.capacity:
                payload, headers, shard_arrivals, broadcasts = encoded
                # Fold in the routing statistics route_chunk would have
                # counted (the fused encoder routes without building the
                # per-shard event lists).
                per_shard_arrivals = router.per_shard_arrivals
                for i, count in enumerate(shard_arrivals):
                    per_shard_arrivals[i] += count
                router.broadcasts += broadcasts
                arena.write(0, payload)
                nbytes = len(payload)
                for conn, header in zip(self._connections, headers):
                    self._send(conn, ("cshard", nbytes, header))
                return [_decode_outputs(self._receive(conn)[1])
                        for conn in self._connections]
        return self.feed(router.route_chunk(chunk))

    def _abort(self) -> None:
        super()._abort()
        if self._arena is not None:
            self._arena.close()

    def finish(self) -> list[_ShardFinal]:
        try:
            for conn in self._connections:
                self._send(conn, ("finish",))
            finals = []
            for conn in self._connections:
                (_tag, answer_items, counters, events, tuples, state,
                 metrics) = self._receive(conn)
                answer: Multiset = Multiset()
                for values, count in answer_items:
                    answer[values] = count
                finals.append(_ShardFinal(answer, counters, events, tuples,
                                          state, metrics))
                conn.close()
            self._join_all()
        finally:
            if self._arena is not None:
                self._arena.close()
        return finals


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except (OSError, ValueError):  # pragma: no cover - platform-specific
        # Exotic platforms can fail to enumerate start methods (no _posix
        # support, restricted environments); treat that as "no fork" and
        # let the caller degrade to the serial backend.
        return False


def _sum_counters(snapshots: Iterable[dict]) -> Counters:
    total = Counters()
    for snapshot in snapshots:
        for name, value in snapshot.items():
            setattr(total, name, getattr(total, name) + value)
    return total


def _merge_shard_metrics(snapshots: list, router: ShardRouter | None = None,
                         extra_labels: dict | None = None):
    """Fold per-shard telemetry snapshots into one parent registry.

    Returns ``(merged, per_shard)`` — both None/empty when telemetry is off
    (every snapshot None).  Each shard's snapshot is merged twice: once
    under ``shard=i`` and once into the unlabeled totals, so the exported
    series satisfy *total = Σ shards* exactly, per (name, label set) —
    replica pipelines produce label-identical registries because operator
    ids are stable plan-walk indices.  Router occupancy gauges are added so
    the export also answers "was the key distribution balanced?".
    """
    if all(snapshot is None for snapshot in snapshots):
        return None, []
    from .telemetry import MetricsRegistry

    merged = MetricsRegistry()
    per_shard = []
    for index, snapshot in enumerate(snapshots):
        registry = MetricsRegistry()
        records = snapshot or []
        registry.merge_snapshot(records)
        per_shard.append(registry)
        labels = dict(extra_labels or {})
        merged.merge_snapshot(records, {**labels, "shard": str(index)})
        merged.merge_snapshot(records, labels or None)
    if router is not None:
        for index, arrivals in enumerate(router.per_shard_arrivals):
            merged.gauge("router_shard_arrivals",
                         shard=str(index)).set(arrivals)
        merged.gauge("router_broadcasts").set(router.broadcasts)
    return merged, per_shard


# -- results -------------------------------------------------------------------


class ShardedRunResult:
    """Outcome of a sharded run; duck-types :class:`~.executor.RunResult`.

    Adds the sharding surface: ``shards``, ``backend``, ``fallback_reason``
    (non-None when the plan was unshardable and ran unsharded),
    ``shard_counters`` (per-shard counter snapshots — the decomposition the
    equivalence tests check), ``per_shard_arrivals`` (router balance), and
    ``state_size`` (total stored tuples across shard pipelines).
    """

    def __init__(self, *, shards: int, backend: str, elapsed: float,
                 events_processed: int, tuples_arrived: int,
                 counters: Counters, shard_counters: list[dict],
                 answer_fn: Callable[[], Multiset],
                 partitionability: Partitionability | None = None,
                 fallback_reason: str | None = None,
                 per_shard_arrivals: list[int] | None = None,
                 state_size: int = 0,
                 metrics=None, shard_metrics: list | None = None):
        self.shards = shards
        self.backend = backend
        self.elapsed = elapsed
        self.events_processed = events_processed
        self.tuples_arrived = tuples_arrived
        self.counters = counters
        self.shard_counters = shard_counters
        self.partitionability = partitionability
        self.fallback_reason = fallback_reason
        self.per_shard_arrivals = per_shard_arrivals or []
        self.state_size = state_size
        #: Merged :class:`~repro.engine.telemetry.MetricsRegistry` (None
        #: unless run with ``telemetry=True``).  Every worker snapshot is
        #: folded in twice — under ``shard=i`` labels and into the unlabeled
        #: totals — so totals decompose exactly: total = Σ shards per
        #: (name, label set), mirroring the counter decomposition.
        self.metrics = metrics
        #: Per-shard registries, in shard order (empty list when off).
        self.shard_metrics = shard_metrics or []
        self._answer_fn = answer_fn

    @classmethod
    def fallback(cls, result, reason: str | None,
                 partitionability: Partitionability | None = None
                 ) -> "ShardedRunResult":
        """Wrap an unsharded :class:`RunResult` after a clean fallback."""
        metrics = result.metrics
        return cls(
            shards=1, backend="inline", elapsed=result.elapsed,
            events_processed=result.events_processed,
            tuples_arrived=result.tuples_arrived,
            counters=result.counters,
            shard_counters=[result.counters.snapshot()],
            answer_fn=result.answer,
            partitionability=partitionability,
            fallback_reason=reason,
            metrics=metrics,
            shard_metrics=[metrics] if metrics is not None else [],
        )

    def answer(self) -> Multiset:
        """Live result multiset Q(now): the sum of the shard views'
        snapshots (every result lives in exactly one shard)."""
        return self._answer_fn()

    @property
    def touches(self) -> int:
        return self.counters.touches

    def time_per_1000(self) -> float:
        if not self.tuples_arrived:
            return 0.0
        return 1000.0 * self.elapsed / self.tuples_arrived

    def touches_per_tuple(self) -> float:
        if not self.tuples_arrived:
            return 0.0
        return self.counters.touches / self.tuples_arrived

    def __repr__(self) -> str:
        note = (f", fallback={self.fallback_reason!r}"
                if self.fallback_reason else "")
        return (f"ShardedRunResult(shards={self.shards}, "
                f"backend={self.backend!r}, events={self.events_processed}, "
                f"tuples={self.tuples_arrived}, "
                f"elapsed={self.elapsed:.3f}s, touches={self.touches}{note})")


# -- the sharded executor ------------------------------------------------------


class ShardedExecutor:
    """Runs one continuous query as ``k`` key-routed pipeline replicas.

    ``backend`` is ``"serial"`` (in-process reference) or ``"process"``
    (forked worker pool).  When the plan is unshardable, ``shards <= 1``,
    or fork is unavailable for the process backend, execution degrades
    gracefully (recorded in the result's ``fallback_reason`` / ``backend``).
    """

    def __init__(self, plan: LogicalNode,
                 config: ExecutionConfig | None = None,
                 shards: int = 2, backend: str = PROCESS):
        if backend not in _BACKENDS:
            raise ExecutionError(
                f"unknown shard backend {backend!r} (valid: {_BACKENDS})")
        self.plan = plan
        self.config = config if config is not None else ExecutionConfig()
        self.shards = shards
        self.backend = backend
        self.partitionability = analyze_partitionability(plan)
        self._subscribers: list[Callable[[Tuple, float], None]] = []

    def subscribe(self, callback: Callable[[Tuple, float], None]) -> None:
        """Receive the merged output stream in deterministic
        ``(now, shard, sequence)`` order."""
        self._subscribers.append(callback)

    def run(self, events: Iterable[Event],
            batch: int | None = None) -> ShardedRunResult:
        part = self.partitionability
        if self.shards <= 1 or not part.shardable:
            reason = None if part.shardable else part.reason
            executor = Executor(compile_plan(self.plan, self.config))
            for callback in self._subscribers:
                executor.subscribe(callback)
            return ShardedRunResult.fallback(
                executor.run(events, batch=batch), reason, part)

        backend_name = self.backend
        if backend_name == PROCESS and not _fork_available():
            backend_name = SERIAL  # pragma: no cover - non-fork platforms

        k = self.shards
        router = ShardRouter(part.keys, k)
        merger = _Merger(self._subscribers)
        collect = merger.active
        backend_cls = _SerialShards if backend_name == SERIAL else _ProcessShards
        backend = backend_cls(self.plan, self.config, k, batch, collect)

        chunk_size = batch if batch is not None and batch > 1 else DEFAULT_CHUNK
        start = time.perf_counter()
        events_processed = 0
        tuples_arrived = 0
        for chunk in _chunked(events, chunk_size):
            events_processed += len(chunk)
            tuples_arrived += sum(
                1 for event in chunk if isinstance(event, Arrival))
            outputs = backend.feed_chunk(chunk, router)
            if collect:
                for shard, items in enumerate(outputs):
                    merger.add(shard, items)
                merger.flush_below(chunk[-1].ts)
        finals = backend.finish()
        merger.finish()
        elapsed = time.perf_counter() - start

        shard_answers = [final.answer for final in finals]

        def answer() -> Multiset:
            total: Multiset = Multiset()
            for shard_answer in shard_answers:
                total.update(shard_answer)
            return total

        metrics, shard_metrics = _merge_shard_metrics(
            [final.metrics for final in finals], router)

        return ShardedRunResult(
            shards=k,
            backend=backend_name,
            elapsed=elapsed,
            events_processed=events_processed,
            tuples_arrived=tuples_arrived,
            counters=_sum_counters(final.counters for final in finals),
            shard_counters=[final.counters for final in finals],
            answer_fn=answer,
            partitionability=part,
            per_shard_arrivals=list(router.per_shard_arrivals),
            state_size=sum(final.state_size for final in finals),
            metrics=metrics,
            shard_metrics=shard_metrics,
        )


# -- group sharding ------------------------------------------------------------


def analyze_group_partitionability(
        members: Sequence[tuple[str, LogicalNode, ExecutionConfig | None]]
) -> Partitionability:
    """Combined verdict for a query group executed in lockstep.

    Every member must be individually shardable, and members that key the
    same stream must agree on the key attribute (a free demand defers to a
    keyed one — any routing is correct for the free member)."""
    keys: dict[str, StreamShardKey] = {}
    for name, plan, _config in members:
        verdict = analyze_partitionability(plan)
        if not verdict.shardable:
            return Partitionability(
                False, {}, f"member {name!r}: {verdict.reason}")
        for stream, shard_key in verdict.keys.items():
            prior = keys.get(stream)
            if prior is None or prior.attr is None:
                keys[stream] = shard_key
            elif (shard_key.attr is not None
                    and shard_key.attr != prior.attr):
                return Partitionability(
                    False, {},
                    f"members key stream {stream!r} on both "
                    f"{prior.attr!r} and {shard_key.attr!r}")
    return Partitionability(True, keys, None)


class _SerialGroupShards:
    """k in-process replicas of the whole member set."""

    def __init__(self, members, n_shards: int, batch: int | None):
        self._batch = batch
        self.replicas: list[list[tuple[str, Driver]]] = []
        for _ in range(n_shards):
            replica = [
                (name, _compile_driver(
                    plan, config if config is not None else ExecutionConfig()))
                for name, plan, config in members
            ]
            self.replicas.append(replica)

    def feed(self, per_shard: list[list[Event]]) -> None:
        batch = self._batch
        for replica, events in zip(self.replicas, per_shard):
            if batch is not None and batch > 1:
                for _name, driver in replica:
                    driver.process_batch(events)
            else:
                for event in events:
                    for _name, driver in replica:
                        driver.process_event(event)

    def finish(self) -> list[dict[str, tuple[Multiset, dict, list | None]]]:
        reports = []
        for replica in self.replicas:
            for _name, driver in replica:
                verify_drain(driver.compiled)
            reports.append({
                name: (driver.answer(),
                       driver.compiled.counters.snapshot(),
                       _final_metrics(driver))
                for name, driver in replica
            })
        return reports


def _group_worker_main(conn, members, batch: int | None) -> None:
    """Worker loop for one forked group shard (all members, one shard)."""
    try:
        replica = [
            (name, _compile_driver(
                plan, config if config is not None else ExecutionConfig()))
            for name, plan, config in members
        ]
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "chunk":
                events = [_decode_event(r) for r in message[1]]
                if batch is not None and batch > 1:
                    for _name, driver in replica:
                        driver.process_batch(events)
                else:
                    for event in events:
                        for _name, driver in replica:
                            driver.process_event(event)
                conn.send(("ok",))
            elif tag == "finish":
                for _name, driver in replica:
                    verify_drain(driver.compiled)
                conn.send(("fin", [
                    (name, list(driver.answer().items()),
                     driver.compiled.counters.snapshot(),
                     _final_metrics(driver))
                    for name, driver in replica
                ]))
                conn.close()
                return
            else:  # pragma: no cover - closed protocol
                raise ExecutionError(f"unknown worker message {tag!r}")
    # Broad catch required at the worker boundary (see _shard_worker_main):
    # any exception type must be serialized into an ("err", ...) reply —
    # exception objects cannot cross the pipe, and an unreported death
    # reaches the parent only as an opaque EOFError.
    except Exception as exc:  # pragma: no cover - exercised via parent raise
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
            conn.close()
        except (BrokenPipeError, OSError):
            # Parent end gone: exit nonzero with the original error rather
            # than masking the failure behind a clean exit.
            raise exc


class _ProcessGroupShards(_WorkerPool):
    """k forked workers, each holding a full member-set replica."""

    what = "group shard worker"

    def __init__(self, members, n_shards: int, batch: int | None):
        super().__init__()
        context = multiprocessing.get_context("fork")
        self._spawn(
            context, _group_worker_main,
            lambda child_conn, _i: (child_conn, members, batch),
            n_shards)

    def feed(self, per_shard: list[list[Event]]) -> None:
        for conn, events in zip(self._connections, per_shard):
            self._send(conn, ("chunk", [_encode_event(e) for e in events]))
        for conn in self._connections:
            self._receive(conn)

    def finish(self) -> list[dict[str, tuple[Multiset, dict, list | None]]]:
        for conn in self._connections:
            self._send(conn, ("finish",))
        reports = []
        for conn in self._connections:
            _tag, entries = self._receive(conn)
            report = {}
            for name, answer_items, counters, metrics in entries:
                answer: Multiset = Multiset()
                for values, count in answer_items:
                    answer[values] = count
                report[name] = (answer, counters, metrics)
            reports.append(report)
            conn.close()
        self._join_all()
        return reports


class ShardedGroupRunResult:
    """Sharded counterpart of :class:`~.multi.GroupRunResult`."""

    def __init__(self, *, names: list[str],
                 answers: dict[str, Multiset],
                 member_counters: dict[str, Counters],
                 shard_counters: list[dict[str, dict]],
                 elapsed: float, events_processed: int, tuples_arrived: int,
                 shards: int, backend: str,
                 partitionability: Partitionability | None = None,
                 fallback=None, fallback_reason: str | None = None,
                 metrics=None):
        self.names = names
        self.elapsed = elapsed
        self.events_processed = events_processed
        self.tuples_arrived = tuples_arrived
        self.shards = shards
        self.backend = backend
        self.partitionability = partitionability
        self.fallback_reason = fallback_reason
        self.shard_counters = shard_counters
        self.member_counters = member_counters
        #: Merged registry over all members and shards (labels ``query=``
        #: plus ``shard=``; unlabeled-per-query series are the shard sums),
        #: or None when telemetry is off.
        self.metrics = metrics
        self._answers = answers
        self._fallback = fallback

    @classmethod
    def from_fallback(cls, result, reason: str | None,
                      partitionability: Partitionability | None = None
                      ) -> "ShardedGroupRunResult":
        """Wrap an unsharded :class:`GroupRunResult` produced by a graceful
        fallback, recording ``reason`` and delegating answers/touches to it."""
        group = result.group
        return cls(
            names=group.names(), answers={}, member_counters={},
            shard_counters=[], elapsed=result.elapsed,
            events_processed=result.events_processed,
            tuples_arrived=result.tuples_arrived,
            shards=1, backend="inline",
            partitionability=partitionability,
            fallback=result, fallback_reason=reason,
            metrics=result.metrics(),
        )

    def answer(self, name: str) -> Multiset:
        if self._fallback is not None:
            return self._fallback.answer(name)
        return self._answers[name]

    def answers(self) -> dict[str, dict]:
        return {name: dict(self.answer(name)) for name in self.names}

    def time_per_1000(self) -> float:
        if not self.tuples_arrived:
            return 0.0
        return 1000.0 * self.elapsed / self.tuples_arrived

    def touches(self) -> dict[str, int]:
        if self._fallback is not None:
            return self._fallback.touches()
        return {name: counters.touches
                for name, counters in self.member_counters.items()}

    def shared_touches(self) -> int:
        if self._fallback is not None:
            return self._fallback.shared_touches()
        return 0  # sharded groups always run members independently

    def total_touches(self) -> int:
        return sum(self.touches().values()) + self.shared_touches()

    def __repr__(self) -> str:
        note = (f", fallback={self.fallback_reason!r}"
                if self.fallback_reason else "")
        return (f"ShardedGroupRunResult(queries={len(self.names)}, "
                f"shards={self.shards}, backend={self.backend!r}, "
                f"events={self.events_processed}, "
                f"elapsed={self.elapsed:.3f}s{note})")


def run_group_sharded(group, events: Iterable[Event], *, shards: int,
                      backend: str = PROCESS,
                      batch: int | None = None) -> ShardedGroupRunResult:
    """Run every member of ``group`` across ``shards`` key-routed replicas.

    Shared groups (``shared=True``) fuse state *across* queries, which a
    shard replica cannot hold independently per key — they fall back to the
    ordinary lockstep run, as do groups whose members are unshardable or
    disagree on a stream's key.
    """
    if backend not in _BACKENDS:
        raise ExecutionError(
            f"unknown shard backend {backend!r} (valid: {_BACKENDS})")
    if group.shared:
        result = group.run(events, batch=batch)
        return ShardedGroupRunResult.from_fallback(
            result,
            "shared groups fuse subplans across queries; run the members "
            "as an independent group to shard them",
        )
    members = [(name, query.plan, query.config)
               for name, query in group._queries.items()]
    part = analyze_group_partitionability(members)
    if shards <= 1 or not part.shardable:
        reason = None if part.shardable else part.reason
        result = group.run(events, batch=batch)
        return ShardedGroupRunResult.from_fallback(result, reason, part)

    backend_name = backend
    if backend_name == PROCESS and not _fork_available():
        backend_name = SERIAL  # pragma: no cover - non-fork platforms

    router = ShardRouter(part.keys, shards)
    backend_cls = (_SerialGroupShards if backend_name == SERIAL
                   else _ProcessGroupShards)
    shard_backend = backend_cls(members, shards, batch)

    chunk_size = batch if batch is not None and batch > 1 else DEFAULT_CHUNK
    start = time.perf_counter()
    events_processed = 0
    tuples_arrived = 0
    for chunk in _chunked(events, chunk_size):
        events_processed += len(chunk)
        tuples_arrived += sum(
            1 for event in chunk if isinstance(event, Arrival))
        shard_backend.feed(router.route_chunk(chunk))
    reports = shard_backend.finish()
    elapsed = time.perf_counter() - start

    names = [name for name, _plan, _config in members]
    answers: dict[str, Multiset] = {name: Multiset() for name in names}
    member_counters: dict[str, Counters] = {}
    shard_counters: list[dict[str, dict]] = []
    for report in reports:
        shard_counters.append(
            {name: counters
             for name, (_answer, counters, _metrics) in report.items()})
        for name, (answer, _counters, _metrics) in report.items():
            answers[name].update(answer)
    for name in names:
        member_counters[name] = _sum_counters(
            report[name][1] for report in reports)

    metrics = None
    for name in names:
        member_metrics, _ = _merge_shard_metrics(
            [report[name][2] for report in reports],
            extra_labels={"query": name})
        if member_metrics is not None:
            if metrics is None:
                from .telemetry import MetricsRegistry
                metrics = MetricsRegistry()
            metrics.merge(member_metrics)
    if metrics is not None:
        for index, arrivals in enumerate(router.per_shard_arrivals):
            metrics.gauge("router_shard_arrivals",
                          shard=str(index)).set(arrivals)
        metrics.gauge("router_broadcasts").set(router.broadcasts)

    return ShardedGroupRunResult(
        names=names, answers=answers, member_counters=member_counters,
        shard_counters=shard_counters, elapsed=elapsed,
        events_processed=events_processed, tuples_arrived=tuples_arrived,
        shards=shards, backend=backend_name, partitionability=part,
        metrics=metrics,
    )
