"""Runtime telemetry: labeled metrics registry, timers, and JSON export.

The paper's evaluation (Section 6) is entirely metric-driven — execution
time per 1000 tuples, state sizes, per-operator costs as functions of the
window size — yet the legacy surface exposes only one flat
:class:`~repro.core.metrics.Counters` bag per pipeline.  This module adds
the observability layer the cost model (Section 5.4) is validated against:

* :class:`MetricsRegistry` — a bag of *labeled* instruments (counters,
  gauges, histograms/timers) keyed by ``(metric name, label set)``.  Labels
  identify the operator (stable per-plan id), its update-pattern class
  (MONOTONIC/WKS/WK/STR), and — after a sharded run — the shard index, so
  per-operator cost-model predictions can be checked against what the
  engine actually did.
* **Null-registry pattern** — telemetry is *off by default*; a disabled
  pipeline carries ``telemetry=None`` and the executor installs no
  instrumented code paths at all, so the hot path allocates nothing and
  executes no telemetry branches.  :data:`NULL_REGISTRY` additionally
  provides write-discarding instruments for code that wants an
  unconditional sink.
* **Label-wise merge** — :meth:`MetricsRegistry.merge_snapshot` folds one
  registry's snapshot into another, optionally adding labels.  A sharded
  run merges every worker's registry twice: once under ``shard=i`` and once
  into the unlabeled totals, so the decomposition *total = Σ shards* holds
  exactly per (name, label set) — mirroring the counter-decomposition
  guarantee of the sharded executor.
* **JSON export** — :func:`metrics_document` / :func:`write_metrics_json`
  produce a versioned, schema-checkable document (CLI ``--metrics-out``),
  and :func:`validate_metrics_document` is the schema check CI gates on.

Telemetry is observation only: instruments never feed back into answers,
output streams, or the legacy deterministic counters, so runs are
byte-identical with telemetry on or off (the equivalence suite in
``tests/test_telemetry.py`` checks this across all execution regimes).
"""

from __future__ import annotations

import json
import math
import time
from typing import Iterable, Mapping

#: Version tag of the exported JSON document; bump on breaking changes.
METRICS_SCHEMA = "repro.metrics/v1"

_TYPES = ("counter", "gauge", "histogram")


def _label_key(labels: Mapping[str, str]) -> tuple:
    """Canonical hashable identity of a label set."""
    return tuple(sorted(labels.items()))


class Instrument:
    """Base class of all metric instruments.

    An instrument is identified by its metric ``name`` plus its ``labels``
    (a mapping of string keys to string values); the registry guarantees at
    most one live instrument per identity.
    """

    __slots__ = ("name", "labels")
    kind = "instrument"

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)

    def record(self) -> dict:
        """One snapshot record: identity plus this instrument's values."""
        out = {"name": self.name, "type": self.kind, "labels": dict(self.labels)}
        out.update(self._values())
        return out

    def _values(self) -> dict:
        raise NotImplementedError

    def combine(self, record: dict) -> None:
        """Fold a snapshot record of the same kind into this instrument."""
        raise NotImplementedError

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return f"{type(self).__name__}({self.name}{{{inner}}}, {self._values()})"


class CounterMetric(Instrument):
    """Monotonically increasing labeled count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, name: str, labels: Mapping[str, str]):
        super().__init__(name, labels)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def _values(self) -> dict:
        return {"value": self.value}

    def combine(self, record: dict) -> None:
        self.value += record["value"]


class GaugeMetric(Instrument):
    """Last-observed labeled value (e.g. a queue depth).

    Merging sums gauges — the natural semantics for the decomposed
    quantities this engine gauges (state sizes, queue depths, router
    balance), where the group/shard total is the sum of the parts.
    """

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self, name: str, labels: Mapping[str, str]):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Keep the high-water mark (peak state sizes)."""
        if value > self.value:
            self.value = value

    def _values(self) -> dict:
        return {"value": self.value}

    def combine(self, record: dict) -> None:
        self.value += record["value"]


class HistogramMetric(Instrument):
    """Streaming summary (count / total / min / max) of observed values.

    Used both for value distributions and — under the ``*_seconds`` naming
    convention — as the accumulator behind operator timing spans.  ``add``
    is the hot-path entry: one attribute-cached method call per span.
    """

    __slots__ = ("count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, labels: Mapping[str, str]):
        super().__init__(name, labels)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    #: Alias matching conventional histogram vocabulary.
    observe = add

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _values(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def combine(self, record: dict) -> None:
        self.count += record["count"]
        self.total += record["total"]
        if record["min"] is not None and record["min"] < self.min:
            self.min = record["min"]
        if record["max"] is not None and record["max"] > self.max:
            self.max = record["max"]


class Span:
    """A reusable wall-clock timing span feeding a histogram.

    ``with registry.timer(...).time(): ...`` for convenience; the executor
    uses explicit ``perf_counter`` deltas plus ``HistogramMetric.add`` on
    its hot paths instead (no context-manager allocation per event).
    """

    __slots__ = ("_hist", "_start")

    def __init__(self, hist: HistogramMetric):
        self._hist = hist
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.add(time.perf_counter() - self._start)


class MetricsRegistry:
    """A mutable bag of labeled instruments.

    Instruments are created on first access and persist for the registry's
    lifetime; repeated ``counter``/``gauge``/``histogram`` calls with the
    same identity return the same object, so hot paths resolve their
    instruments once at compile time and call plain methods afterwards.
    """

    #: Disabled registries short-circuit the executor's instrumentation.
    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple, Instrument] = {}

    # -- instrument accessors ------------------------------------------------

    def _get(self, cls, name: str, labels: Mapping[str, str]) -> Instrument:
        key = (name, cls.kind, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, labels)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):  # pragma: no cover - guarded by key
            raise ValueError(f"metric {name!r} already registered with kind "
                             f"{instrument.kind!r}")
        return instrument

    def counter(self, name: str, **labels: str) -> CounterMetric:
        return self._get(CounterMetric, name, labels)

    def gauge(self, name: str, **labels: str) -> GaugeMetric:
        return self._get(GaugeMetric, name, labels)

    def histogram(self, name: str, **labels: str) -> HistogramMetric:
        return self._get(HistogramMetric, name, labels)

    def timer(self, name: str, **labels: str) -> HistogramMetric:
        """A histogram under the ``*_seconds`` timing convention."""
        if not name.endswith("_seconds"):
            raise ValueError(
                f"timer metric names end in '_seconds', got {name!r}")
        return self._get(HistogramMetric, name, labels)

    def span(self, name: str, **labels: str) -> Span:
        return Span(self.timer(name, **labels))

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterable[Instrument]:
        return iter(self._instruments.values())

    def find(self, name: str, **labels: str) -> list[Instrument]:
        """Instruments matching ``name`` whose labels include ``labels``."""
        wanted = labels.items()
        return [inst for inst in self._instruments.values()
                if inst.name == name
                and all(inst.labels.get(k) == v for k, v in wanted)]

    def value(self, name: str, **labels: str) -> float | int | None:
        """Convenience: the value of the single counter/gauge matching the
        *exact* label set, or None when absent."""
        for kind in ("counter", "gauge"):
            inst = self._instruments.get((name, kind, _label_key(labels)))
            if inst is not None:
                return inst.value
        return None

    def snapshot(self) -> list[dict]:
        """Deterministically ordered plain-data records of every instrument
        (picklable: this is what shard workers ship over their pipes)."""
        records = [inst.record() for inst in self._instruments.values()]
        records.sort(key=lambda r: (r["name"], r["type"],
                                    sorted(r["labels"].items())))
        return records

    # -- merging -------------------------------------------------------------

    def merge_snapshot(self, snapshot: Iterable[dict],
                       extra_labels: Mapping[str, str] | None = None) -> None:
        """Fold ``snapshot`` records into this registry label-wise.

        ``extra_labels`` are added to every record's labels before the fold
        — the sharded merge tags worker snapshots with ``shard=i`` this way.
        Counters and histograms add; gauges sum (decomposition semantics).
        """
        classes = {"counter": CounterMetric, "gauge": GaugeMetric,
                   "histogram": HistogramMetric}
        for record in snapshot:
            labels = dict(record["labels"])
            if extra_labels:
                labels.update(extra_labels)
            cls = classes[record["type"]]
            self._get(cls, record["name"], labels).combine(record)

    def merge(self, other: "MetricsRegistry",
              extra_labels: Mapping[str, str] | None = None) -> None:
        self.merge_snapshot(other.snapshot(), extra_labels)


class NullRegistry(MetricsRegistry):
    """Write-discarding registry: the null-object sink.

    Every accessor returns a cached no-op instrument; nothing is ever
    recorded or exported.  Used where an unconditional registry-shaped
    object is more convenient than a ``None`` check.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounterMetric("null", {})
        self._null_gauge = _NullGaugeMetric("null", {})
        self._null_hist = _NullHistogramMetric("null", {})

    def counter(self, name: str, **labels: str) -> CounterMetric:
        return self._null_counter

    def gauge(self, name: str, **labels: str) -> GaugeMetric:
        return self._null_gauge

    def histogram(self, name: str, **labels: str) -> HistogramMetric:
        return self._null_hist

    def timer(self, name: str, **labels: str) -> HistogramMetric:
        return self._null_hist

    def merge_snapshot(self, snapshot, extra_labels=None) -> None:
        pass


class _NullCounterMetric(CounterMetric):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGaugeMetric(GaugeMetric):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class _NullHistogramMetric(HistogramMetric):
    __slots__ = ()

    def add(self, value: float) -> None:
        pass

    observe = add


#: Shared do-nothing registry; safe to share because every write discards.
NULL_REGISTRY = NullRegistry()


# ---------------------------------------------------------------------------
# JSON export and schema validation
# ---------------------------------------------------------------------------

def metrics_document(registry: MetricsRegistry,
                     run_info: Mapping[str, object] | None = None) -> dict:
    """The versioned export document for ``--metrics-out``."""
    return {
        "schema": METRICS_SCHEMA,
        "run": dict(run_info or {}),
        "metrics": registry.snapshot(),
    }


def write_metrics_json(path: str, registry: MetricsRegistry,
                       run_info: Mapping[str, object] | None = None) -> int:
    """Write the export document to ``path``; returns the series count."""
    document = metrics_document(registry, run_info)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(document, f, indent=2, sort_keys=True, default=_json_default)
        f.write("\n")
    return len(document["metrics"])


def _json_default(value):
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    raise TypeError(f"not JSON-serializable: {value!r}")  # pragma: no cover


def validate_metrics_document(document: dict) -> int:
    """Schema check for an exported metrics document.

    Raises :class:`ValueError` naming the first offending record; returns
    the number of metric series on success.  This is the check the CI
    telemetry job gates on — hand-rolled so the repo needs no jsonschema
    dependency.
    """
    if not isinstance(document, dict):
        raise ValueError("metrics document must be a JSON object")
    if document.get("schema") != METRICS_SCHEMA:
        raise ValueError(f"unknown metrics schema {document.get('schema')!r} "
                         f"(expected {METRICS_SCHEMA!r})")
    if not isinstance(document.get("run"), dict):
        raise ValueError("metrics document needs a 'run' object")
    metrics = document.get("metrics")
    if not isinstance(metrics, list):
        raise ValueError("metrics document needs a 'metrics' list")
    for index, record in enumerate(metrics):
        where = f"metrics[{index}]"
        if not isinstance(record, dict):
            raise ValueError(f"{where}: not an object")
        name = record.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{where}: missing metric name")
        kind = record.get("type")
        if kind not in _TYPES:
            raise ValueError(f"{where} ({name}): unknown type {kind!r}")
        labels = record.get("labels")
        if not isinstance(labels, dict) or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in labels.items()):
            raise ValueError(f"{where} ({name}): labels must map str -> str")
        if kind in ("counter", "gauge"):
            if not isinstance(record.get("value"), (int, float)):
                raise ValueError(f"{where} ({name}): needs a numeric 'value'")
        else:  # histogram
            for field in ("count", "total"):
                if not isinstance(record.get(field), (int, float)):
                    raise ValueError(
                        f"{where} ({name}): needs a numeric {field!r}")
            if record["count"] < 0:
                raise ValueError(f"{where} ({name}): negative count")
    return len(metrics)
