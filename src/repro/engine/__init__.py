"""Execution engine: strategies, executor, views and the query facade."""

from .executor import Executor, RunResult
from .multi import GroupRunResult, QueryGroup
from .profiling import MemoryProfile, MemorySample, profile_memory
from .reeval import ReEvalResult, ReEvaluationQuery
from .query import ContinuousQuery, run_query
from .shard import (
    ShardedExecutor,
    ShardedGroupRunResult,
    ShardedRunResult,
    ShardRouter,
    analyze_group_partitionability,
    run_group_sharded,
    stable_hash,
)
from .sharing import SharedProducer, SharedRuntime, build_shared_runtime
from .strategies import (
    STR_AUTO,
    STR_NEGATIVE,
    STR_PARTITIONED,
    CompiledQuery,
    ExecutionConfig,
    Mode,
    compile_plan,
)
from .views import AppendView, BufferView, GroupView, ResultView

__all__ = [
    "Executor",
    "RunResult",
    "GroupRunResult",
    "QueryGroup",
    "MemoryProfile",
    "MemorySample",
    "profile_memory",
    "ReEvalResult",
    "ReEvaluationQuery",
    "ContinuousQuery",
    "run_query",
    "SharedProducer",
    "SharedRuntime",
    "build_shared_runtime",
    "ShardedExecutor",
    "ShardedGroupRunResult",
    "ShardedRunResult",
    "ShardRouter",
    "analyze_group_partitionability",
    "run_group_sharded",
    "stable_hash",
    "STR_AUTO",
    "STR_NEGATIVE",
    "STR_PARTITIONED",
    "CompiledQuery",
    "ExecutionConfig",
    "Mode",
    "compile_plan",
    "AppendView",
    "BufferView",
    "GroupView",
    "ResultView",
]
