"""Shared-plan multi-query runtime: fingerprint, fuse, and fan out.

Section 5.1 observes that "operator state may be shared across similar
queries".  This module turns a set of continuous queries into a *shared
execution DAG*: structurally identical subplans (detected bottom-up via
:mod:`repro.core.fingerprint`) collapse into one **shared producer** — a
single compiled pipeline with one copy of window/operator state — whose
output stream fans out to a :class:`~repro.operators.stateless.PortOp` in
every consumer's *residual* pipeline.  Ten queries over the same window
then pay one window.

Exactness argument (see DESIGN.md, "Shared multi-query execution")
------------------------------------------------------------------

Sharing is *transparent*: every member query produces the byte-identical
output stream, answer multiset and view snapshots it would produce when
compiled independently.

* **Equal subtrees compile equally.**  A fingerprint digests every
  runtime-relevant parameter of a subtree (operator kinds, schemas,
  predicate identities, window specs, join/grouping attributes, child
  structure), and producers are shared only among queries whose
  :class:`ExecutionConfig` is equal — so the producer's physical pipeline
  is exactly the pipeline each consumer would have built for the subtree.
  The update-pattern annotation of a subtree is context-free (patterns
  derive bottom-up from the leaves, Section 5.2), so the merged annotation
  on the shared node equals each consumer's private annotation, and the
  per-edge buffer choice (FIFO / partitioned / hash) is unchanged.
* **The port observes the exact subtree output stream.**  A producer's
  root output — insertions *and* negative tuples — is recorded per event
  phase and replayed into each consumer's port.  Predictable expirations
  are, by design, not part of that stream (Definition 2); consumers learn
  them from ``exp`` timestamps exactly as they would below an un-shared
  subtree.  :class:`~repro.core.plan.SharedScan` preserves the subtree's
  schema, output pattern and uniform lag, so the residual compiles as if
  the subtree were in place (including whole-plan ``max_span`` via the
  retained source leaves).
* **Per-event ordering is replayed, not approximated.**  Independent
  execution interleaves a query's expiration pass (bottom-up, each
  operator's emissions pushed to the root before the next expires) with
  arrival dispatch (leaves in plan order).  The runtime compiles each
  member into an *expiration program* and *dispatch program* that walk the
  residual plan in the same bottom-up order, with a "replay producer
  record here" slot exactly where the shared subtree sat.  The producer
  itself runs once per event — expiration before dispatch, as in
  tuple-at-a-time execution — the first time any consumer's program
  reaches it; later consumers replay the recorded output.  Tuples are
  immutable value objects, so fan-out shares them safely.
* **Fallback keeps sharing exactness-preserving.**  Subtrees containing
  R-/NRR-joins (relation updates mutate shared table objects) or
  count-based windows (per-executor sequence clocks), and queries whose
  configs differ, never fuse: they compile privately and run exactly as in
  an independent :class:`~repro.engine.multi.QueryGroup`.

Micro-batch execution reuses PR 1's machinery: the runtime tracks one
group-wide expiration boundary (the minimum ``next_expiry`` over every
producer and residual pipeline, lowered by every tuple that flows during
the batch) and runs the per-event expiration programs only when an event's
clock reaches it — so expiration fires once per *shared node*, not once
per query, and skipped passes are provably no-ops for every pipeline.
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter as Multiset
from typing import Iterable, Sequence

from ..core.annotate import annotate, explain, subtree_lag
from ..core.fingerprint import fingerprint_all, shareable
from ..core.metrics import Counters
from ..core.plan import LogicalNode, SharedScan
from ..errors import ExecutionError
from ..streams.stream import Arrival, Event, RelationUpdate
from .driver import Driver
from .program import (
    LeafStep,
    MemberProgram,
    OpStep,
    build_member_program,
    build_program,
)
from .query import ContinuousQuery
from .specialize import make_driver
from .strategies import ExecutionConfig, compile_plan
from .views import ResultView

#: Minimum number of consumers for a subtree to be worth a producer.
MIN_CONSUMERS = 2


class _SinkView(ResultView):
    """No-op view for shared producers.

    The producer's output is materialized by its *consumers* (each residual
    pipeline has its own result view); storing it again at the producer
    would double both memory and the shared touch counts.
    """

    def __init__(self):
        super().__init__(None)

    def apply(self, t, now):
        pass

    def purge(self, now):
        pass

    def snapshot(self, now):
        return Multiset()

    def __len__(self) -> int:
        return 0


def _config_key(config: ExecutionConfig) -> tuple:
    """Hashable identity of every physical-choice-relevant config field."""
    return dataclasses.astuple(config)


class SharedProducer:
    """One compiled copy of a shared subtree, fanned out to its consumers."""

    def __init__(self, name: str, fingerprint: str, subtree: LogicalNode,
                 config: ExecutionConfig):
        self.name = name
        self.fingerprint = fingerprint
        self.plan = subtree
        self.config = config
        #: Group-level shared-state counters: all producer-side work (window
        #: maintenance, shared operator state, expiration) is charged here,
        #: once, regardless of how many consumers fan out.
        self.counters = Counters()
        self.compiled = compile_plan(subtree, config, self.counters)
        self.compiled.view = _SinkView()
        # The producer runs the same compiled program the unified driver
        # runs everywhere else; no façade is needed because the shared
        # runtime owns run-level orchestration.
        self.driver = make_driver(self.compiled, build_program(self.compiled))
        self._captured: list = []
        self.driver.subscribe(self._capture)
        #: Base streams the subtree reads — dispatch triggers on these.
        self.streams = frozenset(
            leaf.stream.name for leaf in subtree.leaves())
        #: Number of attached consumer ports (refcount; see detach()).
        self.consumers = 0
        self._expire_done = False
        self._dispatch_done = False
        self._expire_record: Sequence = ()
        self._dispatch_record: Sequence = ()

    def _capture(self, t, now) -> None:
        self._captured.append(t)

    # -- per-event protocol ------------------------------------------------

    def begin_event(self) -> None:
        """Reset the once-per-event phase guards."""
        self._expire_done = False
        self._dispatch_done = False

    def expire_delta(self, now: float) -> Sequence:
        """Run the producer program's EXPIRE step at ``now`` (first caller
        only) and return the recorded output delta for replay."""
        if not self._expire_done:
            self._expire_done = True
            self._captured = []
            driver = self.driver
            driver.now = now
            driver._expiration_pass(now)
            self._expire_record = self._captured
        return self._expire_record

    def dispatch_delta(self, event: Arrival, now: float,
                       tracked: bool = False) -> Sequence:
        """Run the producer program's DISPATCH step for ``event`` (first
        caller only) and return the recorded output for replay into
        consumer ports."""
        if not self._dispatch_done:
            self._dispatch_done = True
            self._captured = []
            driver = self.driver
            driver.now = now
            driver._events_processed += 1
            driver._tuples_arrived += 1
            driver._dispatch_arrival(event, now, tracked=tracked)
            self._dispatch_record = self._captured
        return self._dispatch_record

    def finish_event(self, now: float) -> None:
        """Producer-side lazy maintenance (purges never change output)."""
        self.driver._maybe_lazy_purge(now)

    def state_size(self) -> int:
        return self.compiled.state_size()

    def __repr__(self) -> str:
        return (f"SharedProducer({self.name}, x{self.consumers}, "
                f"fp={self.fingerprint[:8]})")


class _Member:
    """One member query of a shared runtime."""

    def __init__(self, name: str, query: ContinuousQuery,
                 original_plan: LogicalNode, fused: bool,
                 program: MemberProgram | None = None):
        self.name = name
        self.query = query
        self.original_plan = original_plan
        self.fused = fused
        #: The member's residual program (see
        #: :func:`repro.engine.program.build_member_program`): the
        #: bottom-up interleave of own eager operators, private leaves and
        #: producer port fan-out — the residual-plan image of the full
        #: plan's expiration/dispatch order.  None for private members
        #: (their Executor drives its own program).
        self.program = program

    @property
    def producers(self) -> tuple:
        """Producers this member consumes (with multiplicity)."""
        return self.program.producers if self.program is not None else ()


class SharedRuntime:
    """Drives a fused QueryGroup: producers once, residuals per member.

    Execution follows the independent :class:`QueryGroup` discipline —
    members are processed in insertion order, each seeing [expiration pass;
    event dispatch; lazy purge] per event — except that shared subtree work
    runs once per event inside the producers and is replayed into every
    consumer's port at the exact program position the subtree occupied.
    """

    def __init__(self):
        self._members: dict[str, _Member] = {}
        self._producers: dict[tuple, SharedProducer] = {}
        self.now: float = -math.inf
        self.events_processed = 0
        self.tuples_arrived = 0

    # -- membership --------------------------------------------------------

    def names(self) -> list[str]:
        return list(self._members)

    def member(self, name: str) -> _Member:
        return self._members[name]

    def producers(self) -> list[SharedProducer]:
        return list(self._producers.values())

    def add_private(self, name: str, plan: LogicalNode,
                    config: ExecutionConfig | None) -> ContinuousQuery:
        """Attach a privately compiled query (post-seal / mid-run adds).

        Sharing is established when the group is sealed; late arrivals run
        privately because attaching them to an already-warm producer would
        let them observe window contents from before their registration —
        breaking equivalence with an independently added query.
        """
        if name in self._members:
            raise KeyError(f"query name {name!r} already registered")
        query = ContinuousQuery(plan, config)
        self._members[name] = _Member(name, query, plan, fused=False)
        return query

    def remove(self, name: str) -> None:
        """Refcount-safe detach: producer buffers are freed only when the
        last consumer leaves."""
        member = self._members.pop(name)
        for producer in member.producers:
            producer.consumers -= 1
            if producer.consumers <= 0:
                self._producers.pop(
                    (_config_key(producer.config), producer.fingerprint),
                    None)

    # -- execution ---------------------------------------------------------

    def process_event(self, event: Event) -> None:
        now = event.ts
        if now < self.now:
            raise ExecutionError(
                f"out-of-order event: ts {now} after clock {self.now} "
                "(the model assumes non-decreasing timestamps, Section 2)"
            )
        self.now = now
        self.events_processed += 1
        if isinstance(event, Arrival):
            self.tuples_arrived += 1
        producers = self._producers.values()
        for producer in producers:
            producer.begin_event()
        for member in self._members.values():
            if member.fused:
                driver = member.query.executor.driver
                driver.now = now
                driver._events_processed += 1
                self._member_expire(member, now)
                self._member_dispatch(member, event, now)
            else:
                member.query.executor.process_event(event)
        for producer in producers:
            producer.finish_event(now)

    def process_batch(self, events: Sequence[Event]) -> None:
        """Micro-batch path: one amortized expiration schedule shared by
        every producer and fused residual (PR 1's boundary machinery)."""
        if not events:
            return
        fused = [m for m in self._members.values() if m.fused]
        private = [m for m in self._members.values() if not m.fused]
        producers = list(self._producers.values())
        if not fused:
            # Nothing is shared: fall through to the members' own batched
            # executors (identical to independent grouped batching).
            private_only = True
        else:
            private_only = False
            boundary = self._recompute_boundary(fused, producers)
            for event in events:
                now = event.ts
                if now < self.now:
                    raise ExecutionError(
                        f"out-of-order event: ts {now} after clock "
                        f"{self.now} (the model assumes non-decreasing "
                        "timestamps, Section 2)"
                    )
                self.now = now
                self.events_processed += 1
                if isinstance(event, Arrival):
                    self.tuples_arrived += 1
                for producer in producers:
                    producer.begin_event()
                if now >= boundary:
                    # Boundary crossed: run the full per-event expiration
                    # programs at this event's clock (identical to the
                    # per-tuple trigger), then re-anchor on surviving state.
                    for member in fused:
                        member.query.executor.driver.now = now
                        self._member_expire(member, now)
                    boundary = self._recompute_boundary(fused, producers)
                for member in fused:
                    driver = member.query.executor.driver
                    driver.now = now
                    driver._events_processed += 1
                    self._member_dispatch(member, event, now, tracked=True)
                for producer in producers:
                    producer.finish_event(now)
                # Tracked propagation only ever lowers the per-pipeline
                # boundaries, so the group boundary is their minimum.
                for member in fused:
                    candidate = member.query.executor.driver._next_expiry
                    if candidate < boundary:
                        boundary = candidate
                for producer in producers:
                    candidate = producer.driver._next_expiry
                    if candidate < boundary:
                        boundary = candidate
            for member in fused:
                # One amortized view purge per batch (timestamp purging
                # emits no output; snapshots filter by liveness).
                member.query.executor.compiled.view.purge(self.now)
        for member in private:
            member.query.executor.process_batch(events)
        if private_only:
            last = events[-1].ts
            if last >= self.now:
                self.now = last
            self.events_processed += len(events)
            self.tuples_arrived += sum(
                1 for e in events if isinstance(e, Arrival))

    def _recompute_boundary(self, fused: list, producers: list) -> float:
        boundary = math.inf
        for producer in producers:
            driver = producer.driver
            driver._next_expiry = driver._compute_next_expiry()
            if driver._next_expiry < boundary:
                boundary = driver._next_expiry
        for member in fused:
            driver = member.query.executor.driver
            driver._next_expiry = driver._compute_next_expiry()
            if driver._next_expiry < boundary:
                boundary = driver._next_expiry
        return boundary

    def _member_expire(self, member: _Member, now: float) -> None:
        """Replay the full plan's bottom-up expiration pass: own eager
        operators in residual-walk order, producer deltas fanned into the
        port at the exact position the shared subtree occupied."""
        driver = member.query.executor.driver
        for step in member.program.expire_steps:
            if type(step) is OpStep:
                op = step.op
                outputs = op.expire(now)
                driver._propagate(op, outputs, now)
            else:  # PortStep
                deltas = step.producer.expire_delta(now)
                if deltas:
                    driver._propagate(step.port, list(deltas), now)
        driver.compiled.view.purge(now)

    def _member_dispatch(self, member: _Member, event: Event, now: float,
                         tracked: bool = False) -> None:
        driver = member.query.executor.driver
        if isinstance(event, Arrival):
            driver._tuples_arrived += 1
            propagate = (driver._propagate_tracked if tracked
                         else driver._propagate)
            steps = member.program.dispatch_tables.get(event.stream)
            if steps:
                for step in steps:
                    if type(step) is LeafStep:
                        # Same stamping contract as Driver._dispatch_arrival:
                        # ``now`` is the stamping-domain clock (fused members
                        # are always time-domain; count windows stay private).
                        leaf = step.leaf
                        stamped = leaf.stamp(event.values, now, now)
                        outputs = leaf.process(0, stamped, now)
                        propagate(leaf, outputs, now)
                    else:  # PortStep
                        outs = step.producer.dispatch_delta(
                            event, now, tracked=tracked)
                        if outs:
                            propagate(step.port, list(outs), now)
        elif isinstance(event, RelationUpdate):
            driver._dispatch_relation_update(event, now, tracked=tracked)
        # Tick: the clock already advanced; expiration did the work.
        driver._maybe_lazy_purge(now)

    # -- introspection -----------------------------------------------------

    def shared_counters(self) -> Counters:
        """Aggregate of all producer counters (group-level shared state)."""
        total = Counters()
        for producer in self._producers.values():
            for field in Counters.__slots__:
                setattr(total, field,
                        getattr(total, field) + getattr(producer.counters,
                                                        field))
        return total

    def shared_state_size(self) -> int:
        return sum(p.state_size() for p in self._producers.values())

    def explain(self) -> str:
        """The fused DAG: producers with ``shared×k`` markers, then each
        member's residual plan."""
        lines: list[str] = []
        if self._producers:
            lines.append("== shared subplans ==")
            for producer in self._producers.values():
                lines.append(
                    f"[{producer.name}] shared×{producer.consumers}  "
                    f"(mode={producer.config.mode.value})")
                annotated = annotate(producer.plan)
                for line in explain(producer.plan, annotated).splitlines():
                    lines.append("  " + line)
        else:
            lines.append("== shared subplans ==  (none)")
        lines.append("== member queries ==")
        for member in self._members.values():
            marker = "fused" if member.fused else "private"
            lines.append(f"-- {member.name} ({marker}) --")
            lines.append(member.query.explain())
        return "\n".join(lines)


def build_shared_runtime(
        entries: Iterable[tuple[str, LogicalNode, ExecutionConfig | None]],
        min_consumers: int = MIN_CONSUMERS) -> SharedRuntime:
    """Plan and compile the shared runtime for a group of queries.

    Three passes pick *maximal* shared subtrees without leaving
    single-consumer producers behind:

    1. count every shareable subtree occurrence per config class;
    2. simulate top-down cuts at subtrees with ≥ ``min_consumers``
       occurrences and re-count what actually gets cut (occurrences hidden
       inside larger cuts no longer count);
    3. cut for real at the fingerprints that survived pass 2 — since the
       eligible set only shrank, every surviving fingerprint is cut at
       least as often as pass 2 counted, so every producer ends with
       ≥ ``min_consumers`` consumers.
    """
    entries = [(name, plan, config if config is not None
                else ExecutionConfig()) for name, plan, config in entries]

    # Per-plan fingerprints and shareability, cached by node id.
    plan_fps: list[dict[int, str]] = []
    plan_shareable: list[dict[int, bool]] = []
    for _name, plan, _config in entries:
        fps = fingerprint_all(plan)
        plan_fps.append(fps)
        share: dict[int, bool] = {}
        for node in plan.walk():
            share[id(node)] = shareable(node)
        plan_shareable.append(share)

    def count_cuts(eligible) -> Multiset:
        counts: Multiset = Multiset()

        def visit(node, fps, share, cfg_key):
            key = (cfg_key, fps[id(node)])
            if share[id(node)] and (eligible is None or key in eligible):
                counts[key] += 1
                if eligible is not None:
                    return  # a cut hides its subtree
            if eligible is None:
                # pass 1: raw occurrence counts of *every* subtree
                for child in node.children:
                    visit(child, fps, share, cfg_key)
            else:
                for child in node.children:
                    visit(child, fps, share, cfg_key)

        for index, (_name, plan, config) in enumerate(entries):
            visit(plan, plan_fps[index], plan_shareable[index],
                  _config_key(config))
        return counts

    raw = count_cuts(None)
    eligible1 = {key for key, n in raw.items() if n >= min_consumers}
    simulated = count_cuts(eligible1)
    eligible2 = {key for key, n in simulated.items() if n >= min_consumers}

    runtime = SharedRuntime()
    producer_seq = 0

    for index, (name, plan, config) in enumerate(entries):
        fps = plan_fps[index]
        share = plan_shareable[index]
        cfg_key = _config_key(config)
        producer_of_fp: dict[str, SharedProducer] = {}

        def rewrite(node: LogicalNode) -> LogicalNode:
            nonlocal producer_seq
            fp = fps[id(node)]
            key = (cfg_key, fp)
            if share[id(node)] and key in eligible2:
                producer = runtime._producers.get(key)
                if producer is None:
                    producer_seq += 1
                    producer = SharedProducer(f"S{producer_seq}", fp, node,
                                              config)
                    runtime._producers[key] = producer
                producer.consumers += 1
                producer_of_fp[fp] = producer
                subtree = producer.plan
                return SharedScan(
                    source=subtree,
                    pattern=annotate(subtree).output_pattern,
                    fingerprint=fp,
                    lag=subtree_lag(subtree),
                    label=producer.name,
                )
            if not node.children:
                return node
            children = [rewrite(child) for child in node.children]
            if all(new is old for new, old in zip(children, node.children)):
                return node
            return node.with_children(children)

        residual = rewrite(plan)
        if residual is plan:  # no cuts: plain private member
            runtime.add_private(name, plan, config)
            continue
        query = ContinuousQuery(residual, config)
        program = build_member_program(
            query.compiled,
            lambda node, _by_fp=producer_of_fp: _by_fp[node.fingerprint])
        runtime._members[name] = _Member(
            name, query, plan, fused=True, program=program)
    return runtime
