"""Materialized result views.

Definition 2: "the output of non-monotonic queries (weakest, weak, or
strict) is a materialized view that reflects all the real (insertions) and
negative (deletions) tuples that have been produced on the output stream."
The view must also drop results whose ``exp`` timestamps have passed, unless
every expiration is signalled by a negative tuple (the NT and hybrid
schemes, where the view is a hash table and timestamp purging is never
needed).

The physical structure of the view is a strategy decision, exactly like the
operators' state buffers: an arrival-ordered list under DIRECT (full-scan
purges), a FIFO queue for WKS output, a partitioned buffer for WK output,
and a hash table keyed on ``(values, exp)`` under NT / hybrid.  Group-by
results live in a :class:`GroupStore` keyed by group.
"""

from __future__ import annotations

from collections import Counter as Multiset
from typing import Any

from ..buffers.base import StateBuffer
from ..buffers.groupstore import GroupStore
from ..core.metrics import Counters, NULL_COUNTERS
from ..core.tuples import Tuple


class ResultView:
    """Protocol for materialized query results."""

    def __init__(self, counters: Counters | None = None):
        self.counters = counters if counters is not None else NULL_COUNTERS

    def apply(self, t: Tuple, now: float) -> None:
        """Install a positive result or process a negative one."""
        raise NotImplementedError

    def purge(self, now: float) -> None:
        """Drop results whose expiration timestamps have passed."""
        raise NotImplementedError

    def snapshot(self, now: float) -> Multiset:
        """Multiset of live result values — the query answer Q(now).

        Used by tests and examples; does not charge state touches.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class BufferView(ResultView):
    """A view backed by any :class:`StateBuffer`.

    ``purges`` says whether timestamp-based purging is required: True for
    the direct-style views (list / FIFO / partitioned), False for hash views
    whose deletions all arrive as negative tuples.
    """

    def __init__(self, buffer: StateBuffer, purges: bool = True,
                 counters: Counters | None = None):
        super().__init__(counters)
        self._buffer = buffer
        self.purges = purges

    def apply(self, t: Tuple, now: float) -> None:
        if t.is_negative:
            self._buffer.delete(t)
        else:
            self._buffer.insert(t)

    def purge(self, now: float) -> None:
        if self.purges:
            self._buffer.purge_expired(now)

    def snapshot(self, now: float) -> Multiset:
        return Multiset(t.values for t in self._buffer if t.exp > now)

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def buffer(self) -> StateBuffer:
        return self._buffer

    def __repr__(self) -> str:
        return f"BufferView({self._buffer!r}, purges={self.purges})"


class AppendView(ResultView):
    """Append-only view for monotonic output (results never expire)."""

    def __init__(self, counters: Counters | None = None):
        super().__init__(counters)
        self._results: list[Tuple] = []

    def apply(self, t: Tuple, now: float) -> None:
        if t.is_negative:
            raise AssertionError(
                "monotonic output produced a negative tuple; the plan was "
                "mis-annotated"
            )
        self._results.append(t)
        self.counters.touches += 1

    def purge(self, now: float) -> None:
        pass

    def snapshot(self, now: float) -> Multiset:
        return Multiset(t.values for t in self._results)

    def results(self) -> list[Tuple]:
        """The full append-only output stream."""
        return list(self._results)

    def __len__(self) -> int:
        return len(self._results)


class GroupView(ResultView):
    """View for group-by roots: one current result per group.

    A NEGATIVE-signed emission from :class:`GroupByOp` marks group deletion
    (the group ran out of live input tuples).
    """

    def __init__(self, n_keys: int, counters: Counters | None = None):
        super().__init__(counters)
        self._store = GroupStore(counters)
        self._n_keys = n_keys

    def apply(self, t: Tuple, now: float) -> None:
        group: Any = t.values[: self._n_keys]
        if t.is_negative:
            self._store.replace(group, None)
        else:
            self._store.replace(group, t)

    def purge(self, now: float) -> None:
        pass  # group results are replaced, never timestamp-purged (Rule 4)

    def snapshot(self, now: float) -> Multiset:
        return Multiset(t.values for t in self._store)

    def groups(self) -> dict[Any, Tuple]:
        """Current group → result mapping."""
        return self._store.snapshot()

    def __len__(self) -> int:
        return len(self._store)
