"""Compilation of annotated logical plans into physical pipelines.

This module is where the three execution strategies of the paper differ:

* **NT** (negative tuple approach, Section 2.3.1): windows are materialized
  and emit a negative tuple per expiration; all state and the result view
  are hash tables keyed so that negatives delete in O(1); nothing is ever
  purged by timestamp, but every tuple is processed twice.
* **DIRECT** (Section 2.3.2): nothing is materialized at the leaves and no
  negatives flow (so the plan must be negation-free); state buffers and the
  result view are pattern-unaware arrival-ordered lists whose expiration
  requires sequential scans.
* **UPA** (Section 5): buffers are chosen per input edge from the plan's
  update-pattern annotation — FIFO for WKS, partitioned for WK — duplicate
  elimination uses the δ operator on WKS/WK input, and STR (sub)results use
  either partitioned storage with rare premature-deletion scans or the
  hybrid scheme where everything above the negation runs negative-tuple
  style over hash tables (Section 5.4.3).

The physical pipeline mirrors the logical tree; operators are
strategy-agnostic and receive their behaviour through the buffers and flags
plugged in here.
"""

from __future__ import annotations

import dataclasses
import enum

from ..buffers.base import StateBuffer
from ..buffers.fifo import FifoBuffer
from ..buffers.hashed import HashBuffer
from ..buffers.listbuffer import ListBuffer
from ..buffers.partitioned import PartitionedBuffer
from ..core.annotate import AnnotatedPlan, annotate
from ..core.metrics import Counters
from ..core.patterns import MONOTONIC, STR, UpdatePattern, WK, WKS
from ..core.plan import (
    DupElim,
    GroupBy,
    Intersect,
    Join,
    LogicalNode,
    Negation,
    NRRJoin,
    Project,
    RelationJoin,
    Rename,
    Select,
    SharedScan,
    Union,
    WindowScan,
)
from ..analysis.sanitizer import Sanitizer
from ..core.tuples import deletion_key
from ..errors import ConfigError, PlanError
from ..operators.base import PhysicalOperator
from ..operators.dupelim import DupElimDeltaOp, DupElimStandardOp
from ..operators.groupby import GroupByOp
from ..operators.join import IntersectOp, JoinOp
from ..operators.negation import NegationOp
from ..operators.relation_join import NRRJoinOp, RelationJoinOp
from ..operators.stateless import (PortOp, ProjectOp, SelectOp, UnionOp,
                                   WindowOp)
from ..streams.window import CountWindow, TimeWindow
from .telemetry import MetricsRegistry
from .views import AppendView, BufferView, GroupView, ResultView


class Mode(str, enum.Enum):
    """The three execution strategies compared in the paper."""

    NT = "nt"
    DIRECT = "direct"
    UPA = "upa"


#: STR result storage schemes for UPA (Section 5.3.2 / 5.4.3).
STR_PARTITIONED = "partitioned"
STR_NEGATIVE = "negative"
STR_AUTO = "auto"


@dataclasses.dataclass
class ExecutionConfig:
    """Tunable physical parameters (Section 6.1's experimental knobs).

    Knobs are validated eagerly at construction (and therefore at
    ``dataclasses.replace`` time): a bad value raises
    :class:`repro.errors.ConfigError` immediately, instead of surfacing
    later as an opaque failure deep inside ``PartitionedBuffer.__init__``
    mid-compilation.
    """

    mode: Mode = Mode.UPA
    n_partitions: int = 10
    #: Period of lazy state maintenance, in time units.  None → 5% of the
    #: largest window size (the paper's default).
    lazy_interval: float | None = None
    #: UPA only: how STR (sub)results are stored.
    str_storage: str = STR_AUTO
    #: Estimated fraction of results that expire prematurely; drives the
    #: ``auto`` choice above (Section 5.3.2: partitioned when premature
    #: expirations are rare, negative-tuple style when they dominate).
    premature_frequency: float | None = None
    #: Stateful operators over *unbounded* streams accumulate state without
    #: limit — the feasibility problem sliding windows exist to solve
    #: (Section 1).  Compilation rejects such plans unless explicitly
    #: permitted (e.g. for bounded experiments).
    allow_unbounded_state: bool = False
    #: Checked execution (CLI ``--checked``): arm the runtime conformance
    #: monitors of :mod:`repro.analysis.sanitizer`.  Every state buffer and
    #: result view is wrapped in a pattern-conformance proxy and every
    #: operator's emission points are monitored; a violation of the declared
    #: update patterns raises :class:`repro.errors.PatternViolation` instead
    #: of silently corrupting answers.  Answers, output streams and counters
    #: are byte-identical to unchecked runs.
    checked: bool = False
    #: Telemetry (CLI ``--metrics-out``): compile the pipeline with a
    #: :class:`~repro.engine.telemetry.MetricsRegistry` and install the
    #: executor's instrumented paths (per-operator timing spans, queue-depth
    #: gauges, periodic state sampling).  Observation only — answers, output
    #: streams and the legacy counters are byte-identical either way, and
    #: with the default ``False`` the hot path carries no telemetry code.
    telemetry: bool = False
    #: Program specialization (CLI ``--no-specialize`` opts out): compile
    #: the execution program into monomorphic per-stream dispatch closures
    #: and a fused event-loop (:mod:`repro.engine.specialize`) instead of
    #: interpreting the IR per event.  Answers, output streams and counters
    #: are byte-identical either way — the interpreted
    #: :class:`~repro.engine.driver.Driver` stays as the reference
    #: implementation, and PRG604 re-derives the closure coverage from the
    #: IR on every lint.
    specialize: bool = True
    #: Columnar chunk plane (CLI ``--no-columnar`` opts out): run the
    #: specialized driver's micro-batch loop over struct-of-arrays
    #: :class:`~repro.engine.columnar.ChunkTable` chunks — bulk window
    #: stamping/insertion, column-wise fused stateless prefixes, and the
    #: zero-pickle shared-memory shard transport.  Answers, output
    #: streams, counters and certificates are byte-identical either way
    #: (PRG605 proves column kernels agree with the scalar kernels);
    #: non-vectorizable plans fall back to the row path automatically.
    #: Requires ``specialize`` — with specialization off, the interpreted
    #: reference driver runs row-at-a-time regardless.
    columnar: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.mode, Mode):
            raise ConfigError(
                f"mode must be a Mode, got {self.mode!r} "
                f"(valid: {[m.value for m in Mode]})")
        if self.n_partitions < 1:
            raise ConfigError(
                f"n_partitions must be >= 1, got {self.n_partitions} "
                "(the partitioned buffer needs at least one partition, "
                "Figure 7)")
        if self.lazy_interval is not None and self.lazy_interval <= 0:
            raise ConfigError(
                f"lazy_interval must be positive when set, got "
                f"{self.lazy_interval} (None selects the paper's default of "
                "5% of the largest window)")
        if self.premature_frequency is not None and not (
                0.0 <= self.premature_frequency <= 1.0):
            raise ConfigError(
                f"premature_frequency must lie in [0, 1], got "
                f"{self.premature_frequency} (it is the estimated fraction "
                "of results that expire prematurely, Section 5.3.2)")
        if self.str_storage not in (STR_AUTO, STR_PARTITIONED, STR_NEGATIVE):
            raise ConfigError(
                f"unknown str_storage {self.str_storage!r} (valid: "
                f"{STR_AUTO!r}, {STR_PARTITIONED!r}, {STR_NEGATIVE!r})")
        if not isinstance(self.checked, bool):
            raise ConfigError(
                f"checked must be a bool, got {self.checked!r} (it arms the "
                "runtime conformance monitors of checked execution)")
        if not isinstance(self.telemetry, bool):
            raise ConfigError(
                f"telemetry must be a bool, got {self.telemetry!r} (it arms "
                "the runtime metrics registry and timing spans)")
        if not isinstance(self.specialize, bool):
            raise ConfigError(
                f"specialize must be a bool, got {self.specialize!r} (it "
                "selects the monomorphic specialized event loop; False runs "
                "the interpreted reference driver)")
        if not isinstance(self.columnar, bool):
            raise ConfigError(
                f"columnar must be a bool, got {self.columnar!r} (it "
                "selects the struct-of-arrays micro-batch loop; False runs "
                "the row-at-a-time path)")
        if self.checked and self.allow_unbounded_state:
            raise ConfigError(
                "checked=True is incompatible with allow_unbounded_state="
                "True: the conformance monitors assert expiration "
                "invariants (FIFO order, exp-exactness, drain-time counter "
                "conservation) that are vacuous for never-expiring state — "
                "combining the two indicates a configuration mistake")

    def resolved_str_storage(self) -> str:
        """The STR scheme after resolving ``auto`` (Section 5.3.2's rule)."""
        if self.str_storage != STR_AUTO:
            return self.str_storage
        if self.premature_frequency is not None and self.premature_frequency > 0.25:
            return STR_NEGATIVE
        return STR_PARTITIONED


class CompiledQuery:
    """A physical pipeline ready for the executor."""

    def __init__(self, root: LogicalNode, annotated: AnnotatedPlan,
                 config: ExecutionConfig, counters: Counters):
        self.root = root
        self.annotated = annotated
        self.config = config
        self.counters = counters
        self.ops: dict[int, PhysicalOperator] = {}  # id(logical) -> physical
        self.routes: dict[int, list[tuple[PhysicalOperator, int]]] = {}
        self.leaf_bindings: dict[str, list[WindowOp]] = {}
        #: (SharedScan, PortOp) pairs, in plan walk order — the shared group
        #: executor delivers producer output here.
        self.shared_ports: list[tuple[SharedScan, PortOp]] = []
        self.relation_bindings: dict[str, list[RelationJoinOp]] = {}
        self.relations: dict[str, object] = {}  # name -> Relation | NRR
        self.expire_ops: list[PhysicalOperator] = []  # bottom-up order
        self.lazy_ops: list[PhysicalOperator] = []
        self.view: ResultView = AppendView(counters)
        self.time_domain = "time"
        self.count_stream: str | None = None
        self.max_span: float | None = None
        #: Armed (non-None) only under ``ExecutionConfig(checked=True)``.
        self.sanitizer: Sanitizer | None = None
        #: Armed (non-None) only under ``ExecutionConfig(telemetry=True)``:
        #: the pipeline's labeled metrics registry plus the per-operator
        #: instrument tables the executor's instrumented paths resolve once
        #: at compile time (id(op) -> instrument).
        self.telemetry: "MetricsRegistry | None" = None
        self.op_timers: dict[int, object] = {}
        self.op_expire_timers: dict[int, object] = {}
        self.op_state_gauges: dict[int, object] = {}
        #: id(op) -> (stable op id, operator kind, pattern class) labels.
        self.op_meta: dict[int, tuple[str, str, str]] = {}
        #: The flattened ExecutionProgram (set by engine.program.
        #: build_program when a driver is constructed; the PRG6xx lint
        #: rules and the ``-- program:`` explain footer inspect it).
        self.program = None

    def route_of(self, op: PhysicalOperator) -> list[tuple[PhysicalOperator, int]]:
        return self.routes[id(op)]

    def op_for(self, node: LogicalNode) -> PhysicalOperator:
        return self.ops[id(node)]

    def state_size(self) -> int:
        """Total tuples held across all operator state (not the view)."""
        return sum(op.state_size() for op in self.ops.values())

    def __repr__(self) -> str:
        return (
            f"CompiledQuery(mode={self.config.mode.value}, "
            f"ops={len(self.ops)}, view={type(self.view).__name__})"
        )


def compile_plan(root: LogicalNode, config: ExecutionConfig,
                 counters: Counters | None = None) -> CompiledQuery:
    """Compile a logical plan under the given strategy."""
    counters = counters if counters is not None else Counters()
    annotated = annotate(root)
    _validate(root, annotated, config)
    compiled = CompiledQuery(root, annotated, config, counters)
    if config.checked:
        compiled.sanitizer = Sanitizer()
    _inspect_windows(root, compiled)

    hybrid = (
        config.mode is Mode.UPA
        and annotated.contains_strict()
        and config.resolved_str_storage() == STR_NEGATIVE
    )
    direct_region = _direct_region(root) if hybrid else set()

    for node in root.walk():
        _build_node(node, compiled, annotated, config, hybrid, direct_region)

    _wire_routes(root, compiled)
    _build_view(root, compiled, annotated, config, hybrid)
    if config.telemetry:
        _register_telemetry(root, compiled, annotated)
    return compiled


def _register_telemetry(root: LogicalNode, compiled: CompiledQuery,
                        annotated: AnnotatedPlan) -> None:
    """Create the pipeline's registry and per-operator instruments.

    Every physical operator gets a stable id (walk-order index plus class
    name — deterministic for a given plan, so shard replicas of the same
    plan produce label-identical registries that merge exactly), a timing
    span for arrival processing, one for eager expiration where applicable,
    and a queue-depth gauge sampled periodically by the executor.  Labels
    carry the operator's update-pattern class (Section 5.2's annotation) so
    exported metrics slice along the axis the paper's cost model predicts.
    """
    registry = MetricsRegistry()
    compiled.telemetry = registry
    expire_ids = {id(op) for op in compiled.expire_ops}
    for index, node in enumerate(root.walk()):
        op = compiled.op_for(node)
        kind = type(op).__name__
        op_id = f"{index}:{kind}"
        pattern = str(annotated.pattern_of(node))
        compiled.op_meta[id(op)] = (op_id, kind, pattern)
        labels = {"op": op_id, "kind": kind, "pattern": pattern}
        compiled.op_timers[id(op)] = registry.timer(
            "op_process_seconds", **labels)
        if id(op) in expire_ids:
            compiled.op_expire_timers[id(op)] = registry.timer(
                "op_expire_seconds", **labels)
        compiled.op_state_gauges[id(op)] = registry.gauge(
            "op_state_tuples", **labels)


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

def _validate(root: LogicalNode, annotated: AnnotatedPlan,
              config: ExecutionConfig) -> None:
    for node in root.walk():
        if isinstance(node, GroupBy) and node is not root:
            raise PlanError(
                "GroupBy must be the plan root: its replacement-keyed output "
                "cannot feed other operators in this implementation"
            )
        if isinstance(node, NRRJoin) and config.mode is Mode.NT:
            raise PlanError(
                "NRR-joins cannot run under the negative tuple approach: "
                "they are incapable of processing negative tuples "
                "(Section 5.4.2)"
            )
    if config.mode is Mode.DIRECT and annotated.contains_strict():
        raise PlanError(
            "the direct approach supports only negation-free plans without "
            "retroactive relation joins (Section 3.1: only non-STR results "
            "can be maintained without negative tuples)"
        )
    if config.str_storage not in (STR_AUTO, STR_PARTITIONED, STR_NEGATIVE):
        raise PlanError(f"unknown str_storage {config.str_storage!r}")
    if not config.allow_unbounded_state:
        _reject_unbounded_state(root, annotated)


#: Stateful logical operators: their inputs are stored, so a MONOTONIC
#: (never-expiring) input means unbounded memory.
_STATEFUL = (Join, Intersect, DupElim, GroupBy, Negation, RelationJoin)


def _reject_unbounded_state(root: LogicalNode,
                            annotated: AnnotatedPlan) -> None:
    for node in root.walk():
        if not isinstance(node, _STATEFUL):
            continue
        for child in node.children:
            if annotated.pattern_of(child) is MONOTONIC:
                raise PlanError(
                    f"{node.describe()} stores its input, but the input "
                    "below it is an unbounded stream whose tuples never "
                    "expire: state would grow without limit (Section 1). "
                    "Bound the stream with a sliding window, or set "
                    "allow_unbounded_state=True for bounded experiments."
                )


def _inspect_windows(root: LogicalNode, compiled: CompiledQuery) -> None:
    leaves = root.leaves()
    # Shared scans hide their subtree's window leaves from walk(); fold
    # them back in so residual-plan decisions that depend on whole-plan
    # window geometry (max_span for partitioned buffers, the time domain)
    # are identical to the un-cut plan's.
    for node in root.walk():
        if isinstance(node, SharedScan):
            leaves = leaves + node.source_leaves()
    time_leaves = [l for l in leaves
                   if isinstance(l.stream.window, TimeWindow)]
    count_leaves = [l for l in leaves
                    if isinstance(l.stream.window, CountWindow)]
    if count_leaves and time_leaves:
        raise PlanError(
            "mixing time-based and count-based windows in one plan is not "
            "supported (their expiration domains are incomparable)"
        )
    if count_leaves:
        streams = {l.stream.name for l in count_leaves}
        all_streams = {l.stream.name for l in leaves}
        if len(all_streams) > 1:
            raise PlanError(
                "count-based windows are supported for single-stream plans "
                "only (the sequence clock is per-stream); got streams "
                f"{sorted(all_streams)}"
            )
        compiled.time_domain = "count"
        compiled.count_stream = next(iter(streams))
    spans = [l.stream.window.span for l in leaves if l.stream.window is not None]
    compiled.max_span = max(spans) if spans else None


def _direct_region(root: LogicalNode) -> set[int]:
    """Nodes strictly below a Negation: they run direct under the hybrid
    scheme (Section 5.4.3: "all the operators below negation use the direct
    approach without generating negative tuples")."""
    region: set[int] = set()

    def mark(node: LogicalNode) -> None:
        for sub in node.walk():
            region.add(id(sub))

    def visit(node: LogicalNode) -> None:
        if isinstance(node, Negation):
            for child in node.children:
                mark(child)
        else:
            for child in node.children:
                visit(child)

    visit(root)
    return region


# ---------------------------------------------------------------------------
# per-node construction
# ---------------------------------------------------------------------------

def _build_node(node: LogicalNode, compiled: CompiledQuery,
                annotated: AnnotatedPlan, config: ExecutionConfig,
                hybrid: bool, direct_region: set[int]) -> None:
    counters = compiled.counters
    mode = config.mode
    nt_style = mode is Mode.NT or (hybrid and id(node) not in direct_region)
    sanitizer = compiled.sanitizer

    def buffer_for(pattern: UpdatePattern, key_of,
                   slot: str = "state") -> StateBuffer:
        buffer = _make_buffer(pattern, key_of, nt_style, mode, config,
                              compiled.max_span, counters)
        if sanitizer is not None:
            buffer = sanitizer.wrap_buffer(
                buffer, pattern, f"{node.describe()}[{slot}]", nt_style)
        return buffer

    op: PhysicalOperator

    if isinstance(node, WindowScan):
        materialize = nt_style and node.stream.window is not None
        op = WindowOp(node.schema, node.stream.window,
                      materialize=materialize, counters=counters,
                      name=node.stream.name)
        compiled.leaf_bindings.setdefault(node.stream.name, []).append(op)
        if materialize:
            compiled.expire_ops.append(op)
            if sanitizer is not None:
                # The window's own store is built inside the operator; wrap
                # it post-hoc (the executor's batched fast path reaches the
                # store through this same instance attribute).
                op._store = sanitizer.wrap_buffer(
                    op._store, annotated.pattern_of(node),
                    f"{node.describe()}[window]", nt_style)

    elif isinstance(node, SharedScan):
        # Fan-in port for a shared producer's output stream; transparent
        # (no counters, no clock) so per-query attribution matches what
        # the residual operators alone cost under independent execution.
        op = PortOp(node.schema, counters)
        compiled.shared_ports.append((node, op))

    elif isinstance(node, Select):
        op = SelectOp(node.schema, node.predicate.fn, counters,
                      label=node.predicate.label)

    elif isinstance(node, Project):
        op = ProjectOp(node.schema, node.indices, counters)

    elif isinstance(node, Rename):
        # Values are untouched: renaming is a pure pass-through at runtime.
        op = UnionOp(node.schema, counters)

    elif isinstance(node, Union):
        op = UnionOp(node.schema, counters)

    elif isinstance(node, Join):
        li = node.left.schema.index_of(node.left_attr)
        ri = node.right.schema.index_of(node.right_attr)
        lp = annotated.pattern_of(node.left)
        rp = annotated.pattern_of(node.right)
        op = JoinOp(
            node.schema, li, ri,
            buffer_for(lp, lambda t, i=li: t.values[i], "left"),
            buffer_for(rp, lambda t, i=ri: t.values[i], "right"),
            counters,
        )
        compiled.lazy_ops.append(op)

    elif isinstance(node, Intersect):
        lp = annotated.pattern_of(node.children[0])
        rp = annotated.pattern_of(node.children[1])
        values_of = lambda t: t.values  # noqa: E731
        op = IntersectOp(node.schema, buffer_for(lp, values_of, "left"),
                         buffer_for(rp, values_of, "right"), counters)
        compiled.lazy_ops.append(op)

    elif isinstance(node, DupElim):
        pattern = annotated.pattern_of(node.child)
        # Representatives expire out of generation order even over WKS
        # input (Figure 2), so the output state follows the *output*
        # pattern (WK, or STR over STR input).
        out_pattern = annotated.pattern_of(node)
        values_of = lambda t: t.values  # noqa: E731
        use_delta = (
            mode is Mode.UPA and pattern is not STR
            and not nt_style
        )
        if use_delta:
            op = DupElimDeltaOp(node.schema,
                                buffer_for(out_pattern, values_of, "output"),
                                counters)
        else:
            op = DupElimStandardOp(
                node.schema,
                buffer_for(pattern, values_of, "input"),
                buffer_for(out_pattern, values_of, "output"),
                counters,
            )
            compiled.lazy_ops.append(op)
        if not nt_style:
            compiled.expire_ops.append(op)

    elif isinstance(node, GroupBy):
        key_idx = node.child.schema.indices_of(node.keys)
        agg_kinds = tuple(a.kind for a in node.aggregates)
        agg_idx = tuple(
            node.child.schema.index_of(a.attr) if a.attr is not None else None
            for a in node.aggregates
        )
        pattern = annotated.pattern_of(node.child)
        values_of = lambda t: t.values  # noqa: E731
        op = GroupByOp(node.schema, key_idx, agg_kinds, agg_idx,
                       buffer_for(pattern, values_of, "input"), counters)
        if not nt_style:
            compiled.expire_ops.append(op)

    elif isinstance(node, Negation):
        li = node.left.schema.index_of(node.left_attr)
        ri = node.right.schema.index_of(node.right_attr)
        # Under NT the windows below deliver negatives, so the operator does
        # not self-expire; under hybrid/UPA/direct-below it detects its own
        # expirations.  emit_all makes every answer expiration explicit, for
        # hash-keyed downstream state (NT and hybrid).
        self_expire = mode is not Mode.NT
        emit_all = mode is Mode.NT or (hybrid and id(node) not in direct_region)
        op = NegationOp(node.schema, li, ri, emit_all=emit_all,
                        self_expire=self_expire, counters=counters)
        if self_expire:
            compiled.expire_ops.append(op)

    elif isinstance(node, NRRJoin):
        li = node.child.schema.index_of(node.left_attr)
        ri = node.nrr.schema.index_of(node.rel_attr)
        node.nrr.ensure_index(ri)
        op = NRRJoinOp(node.schema, node.nrr, li, ri, counters)
        compiled.relations[node.nrr.name] = node.nrr

    elif isinstance(node, RelationJoin):
        li = node.child.schema.index_of(node.left_attr)
        ri = node.relation.schema.index_of(node.rel_attr)
        node.relation.ensure_index(ri)
        pattern = annotated.pattern_of(node.child)
        emit_all = nt_style
        op = RelationJoinOp(
            node.schema, node.relation, li, ri,
            buffer_for(pattern, lambda t, i=li: t.values[i], "window"),
            emit_all=emit_all, counters=counters,
        )
        compiled.relation_bindings.setdefault(node.relation.name, []).append(op)
        compiled.relations[node.relation.name] = node.relation
        if emit_all and mode is not Mode.NT:
            compiled.expire_ops.append(op)
        if not emit_all:
            compiled.lazy_ops.append(op)

    else:  # pragma: no cover - exhaustive over the algebra
        raise PlanError(f"no physical implementation for {node!r}")

    if sanitizer is not None:
        # Negative tuples may originate only from operators running
        # negative-tuple style (NT mode, the hybrid region above a negation)
        # or whose output edge is strict non-monotonic (Section 3.1).
        negatives_allowed = nt_style or annotated.pattern_of(node) is STR
        sanitizer.wrap_operator(op, node.describe(), negatives_allowed)

    compiled.ops[id(node)] = op


def _make_buffer(pattern: UpdatePattern, key_of, nt_style: bool, mode: Mode,
                 config: ExecutionConfig, max_span: float | None,
                 counters: Counters) -> StateBuffer:
    """Pick the physical structure for state fed by an edge with ``pattern``."""
    if nt_style:
        return HashBuffer(key_of, counters)
    if mode is Mode.DIRECT:
        return ListBuffer(key_of, counters)
    # UPA, direct-style region: pattern-aware choice (Section 5.3.2).
    if pattern in (MONOTONIC, WKS):
        return FifoBuffer(key_of, counters)
    if max_span is None:
        # Only reachable with allow_unbounded_state: there are no windows,
        # so nothing ever expires and partitioning by expiration time is
        # meaningless — a plain list suffices.
        return ListBuffer(key_of, counters)
    # WK and (rare-premature) STR input both use the partitioned structure;
    # STR premature deletions scan a single partition.
    return PartitionedBuffer(max_span, config.n_partitions, key_of, counters)


# ---------------------------------------------------------------------------
# routing and the view
# ---------------------------------------------------------------------------

def _wire_routes(root: LogicalNode, compiled: CompiledQuery) -> None:
    """Compute, for every physical op, the (parent, input-slot) chain to the
    root, which the executor uses to propagate emissions."""
    parent_of: dict[int, tuple[LogicalNode, int]] = {}
    for node in root.walk():
        for slot, child in enumerate(node.children):
            parent_of[id(child)] = (node, slot)

    for node in root.walk():
        route: list[tuple[PhysicalOperator, int]] = []
        cursor = node
        while id(cursor) in parent_of:
            parent, slot = parent_of[id(cursor)]
            route.append((compiled.op_for(parent), slot))
            cursor = parent
        compiled.routes[id(compiled.op_for(node))] = route


def _build_view(root: LogicalNode, compiled: CompiledQuery,
                annotated: AnnotatedPlan, config: ExecutionConfig,
                hybrid: bool) -> None:
    counters = compiled.counters
    pattern = annotated.output_pattern
    sanitizer = compiled.sanitizer

    def monitored(buffer: StateBuffer, nt_like: bool) -> StateBuffer:
        """Wrap the result view's buffer when checked execution is armed."""
        if sanitizer is None:
            return buffer
        return sanitizer.wrap_buffer(buffer, pattern, "result-view", nt_like)

    if isinstance(root, GroupBy):
        compiled.view = GroupView(len(root.keys), counters)
        return
    if isinstance(root, SharedScan) and root.group_keys is not None:
        # A whole-plan share whose subtree is a group-by: the producer
        # replays replacement-keyed group results, so the consumer's view
        # must be a group view too.
        compiled.view = GroupView(root.group_keys, counters)
        return
    if pattern is MONOTONIC:
        compiled.view = AppendView(counters)
        return

    mode = config.mode
    if mode is Mode.NT or (mode is Mode.UPA and pattern is STR
                           and config.resolved_str_storage() == STR_NEGATIVE):
        compiled.view = BufferView(
            monitored(HashBuffer(deletion_key, counters), nt_like=True),
            purges=False, counters=counters)
        return
    if mode is Mode.DIRECT:
        compiled.view = BufferView(
            monitored(ListBuffer(deletion_key, counters), nt_like=False),
            purges=True, counters=counters)
        return
    # UPA direct-style views.
    if pattern is WKS:
        compiled.view = BufferView(
            monitored(FifoBuffer(deletion_key, counters), nt_like=False),
            purges=True, counters=counters)
        return
    if compiled.max_span is None:
        # allow_unbounded_state runs: nothing expires, a list view suffices.
        compiled.view = BufferView(ListBuffer(deletion_key, counters),
                                   purges=False, counters=counters)
        return
    compiled.view = BufferView(
        monitored(
            PartitionedBuffer(compiled.max_span, config.n_partitions,
                              deletion_key, counters),
            nt_like=False),
        purges=True, counters=counters,
    )
