"""Execution-program IR: the compiled event-loop shared by every regime.

The paper's processing model (Section 2) is one loop — expire, dispatch,
propagate, purge, deliver — whose *content* is derived statically from the
plan's update patterns (Sections 5.2–5.4).  This module makes that loop an
explicit, precomputed object: :func:`build_program` flattens a
:class:`~repro.engine.strategies.CompiledQuery` into an
:class:`ExecutionProgram` — per-stream dispatch tables with fused
scalar-kernel prefixes and resolved routes, the eager/lazy expiration
participant lists, and an explicit :class:`Step` sequence — and
:mod:`repro.engine.driver` runs any such program in per-tuple or micro-batch
mode.  Per-tuple execution (``Executor``), micro-batching, shared groups
(``sharing.py``) and key-sharded workers (``shard.py``) all drive these same
programs; none carries a private event-loop copy.

Because the program is a plain data object, it can also be *cross-checked*:
the PRG6xx lint rules (``analysis/rules.py``) re-derive the expected step
structure from the annotated plan and compare it against the compiled
program (routes cover every edge, expiration participants match the
update-pattern classification, fused prefixes are stateless).
"""

from __future__ import annotations

import dataclasses
from typing import NamedTuple

from ..operators.base import PhysicalOperator
from ..operators.stateless import WindowOp

#: The driver's step vocabulary, in execution order.
STEP_KINDS = ("EXPIRE", "DISPATCH", "PROPAGATE", "PURGE", "DELIVER")


class DispatchPlan(NamedTuple):
    """One leaf's precompiled arrival plan for a stream.

    ``prefix`` is the maximal chain of stateless operators directly above
    the leaf that expose a :meth:`scalar_kernel` — inlined per tuple by the
    batched arrival loop — and ``suffix`` is the remaining route, dispatched
    through the generic (tracked) propagation path.  Fusing only reorders
    *how* the same per-tuple work is expressed; outputs, state transitions
    and counter charges are unchanged.
    """

    leaf: WindowOp
    is_window: bool
    prefix: tuple  # ((op, kind, arg), ...) from scalar_kernel()
    suffix: tuple  # ((parent, slot), ...) remaining route to the root


@dataclasses.dataclass(frozen=True)
class Step:
    """One named stage of the event loop, with a human-readable detail."""

    kind: str
    detail: str


class ExecutionProgram:
    """A flattened, precomputed event-loop program for one pipeline.

    Everything the driver needs per event is resolved here once, at
    compile time: no plan walks, no route lookups through the logical
    tree, no lazily-built caches on the hot path.
    """

    __slots__ = ("compiled", "dispatch", "routes", "expire_ops", "lazy_ops",
                 "leaf_bindings", "relations", "relation_bindings",
                 "time_domain", "count_stream", "steps", "layers",
                 "specialization")

    def __init__(self, compiled, dispatch, routes, expire_ops, lazy_ops,
                 steps, layers):
        self.compiled = compiled
        #: stream name -> tuple[DispatchPlan] (covers every leaf binding).
        self.dispatch = dispatch
        #: id(op) -> resolved route to the root (shared with the compile).
        self.routes = routes
        self.expire_ops = expire_ops
        self.lazy_ops = lazy_ops
        self.leaf_bindings = compiled.leaf_bindings
        self.relations = compiled.relations
        self.relation_bindings = compiled.relation_bindings
        self.time_domain = compiled.time_domain
        self.count_stream = compiled.count_stream
        #: The explicit step list, in execution order.
        self.steps = steps
        #: Instrumentation layers installed on this program ("checked" at
        #: build time, "telemetry" when a TelemetryLayer arms a driver).
        self.layers = layers
        #: The monomorphic specialization table compiled from this IR (see
        #: :func:`repro.engine.specialize.specialize_program`), cached so
        #: the PRG604 lint rule inspects the very table the specialized
        #: driver's closures were compiled from.  None until specialized.
        self.specialization = None

    def fused_op_count(self) -> int:
        return sum(len(plan.prefix)
                   for plans in self.dispatch.values() for plan in plans)

    def describe(self) -> str:
        """One-line summary for the ``-- program:`` explain footer."""
        layers = "+".join(self.layers) if self.layers else "none"
        return (f"{'>'.join(step.kind for step in self.steps)}"
                f" | streams={len(self.dispatch)}"
                f" fused={self.fused_op_count()}"
                f" expire={len(self.expire_ops)}"
                f" lazy={len(self.lazy_ops)}"
                f" layers={layers}")

    def __repr__(self) -> str:
        return f"ExecutionProgram({self.describe()})"


def build_program(compiled) -> ExecutionProgram:
    """Flatten a compiled pipeline into an :class:`ExecutionProgram`.

    Also records the program on ``compiled.program`` so explain footers and
    the PRG6xx lint rules inspect the very object the driver runs.
    """
    dispatch: dict[str, tuple[DispatchPlan, ...]] = {}
    for stream, leaves in compiled.leaf_bindings.items():
        plans = []
        for leaf in leaves:
            route = list(compiled.route_of(leaf))
            prefix = []
            split = 0
            for parent, _slot in route:
                kernel = parent.scalar_kernel()
                if kernel is None:
                    break
                prefix.append((parent, kernel[0], kernel[1]))
                split += 1
            plans.append(DispatchPlan(leaf, isinstance(leaf, WindowOp),
                                      tuple(prefix), tuple(route[split:])))
        dispatch[stream] = tuple(plans)
    expire_ops = tuple(compiled.expire_ops)
    lazy_ops = tuple(compiled.lazy_ops)
    layers = ["checked"] if compiled.sanitizer is not None else []
    fused = sum(len(plan.prefix)
                for plans in dispatch.values() for plan in plans)
    steps = (
        Step("EXPIRE", f"{len(expire_ops)} eager participant(s), bottom-up"),
        Step("DISPATCH", f"{len(dispatch)} stream table(s), "
                         f"{fused} fused prefix op(s)"),
        Step("PROPAGATE", f"{len(compiled.routes)} resolved route(s)"),
        Step("PURGE", f"{len(lazy_ops)} lazily-maintained op(s)"),
        Step("DELIVER", f"{type(compiled.view).__name__} + subscribers"),
    )
    program = ExecutionProgram(compiled, dispatch, compiled.routes,
                               expire_ops, lazy_ops, steps, layers)
    compiled.program = program
    return program


# -- shared-group member programs -------------------------------------------
#
# A fused QueryGroup member's residual pipeline is driven by the same step
# vocabulary, except that SharedScan cut points are replaced by *port
# fan-out*: the producer runs its own program once per event and each
# consumer replays the recorded delta into its PortOp.


class OpStep:
    """Expire one eagerly-maintained operator and propagate its deltas."""

    __slots__ = ("op",)

    def __init__(self, op: PhysicalOperator):
        self.op = op


class PortStep:
    """Replay a shared producer's phase delta into a consumer port."""

    __slots__ = ("producer", "port")

    def __init__(self, producer, port):
        self.producer = producer
        self.port = port


class LeafStep:
    """Stamp and process an arrival at a private window leaf."""

    __slots__ = ("leaf",)

    def __init__(self, leaf):
        self.leaf = leaf


class MemberProgram:
    """A fused member's residual program: port fan-out composed with the
    member's own expiration/dispatch steps, all in bottom-up plan order."""

    __slots__ = ("expire_steps", "dispatch_tables", "producers")

    def __init__(self, expire_steps, dispatch_tables, producers):
        self.expire_steps = expire_steps
        #: stream name -> tuple[LeafStep | PortStep]
        self.dispatch_tables = dispatch_tables
        #: producers feeding this member, in plan walk order.
        self.producers = producers


def build_member_program(compiled, producer_for) -> MemberProgram:
    """Compose a fused member's program from its residual pipeline.

    ``producer_for`` maps a SharedScan plan node to its SharedProducer.
    Walking the residual plan bottom-up (children before parents) yields,
    in order: port fan-out steps at every cut point (expire replay +
    per-stream dispatch replay), eager operators for the expire program,
    and private window leaves for the dispatch tables — the residual-plan
    image of the full plan's expiration/dispatch order.  Producers are
    recorded once per SharedScan occurrence (refcount multiplicity).
    """
    from ..core.plan import SharedScan, WindowScan

    expire_steps: list = []
    dispatch_tables: dict[str, list] = {}
    producers: list = []
    expire_ids = {id(op) for op in compiled.expire_ops}
    port_by_scan = {id(scan): port for scan, port in compiled.shared_ports}
    for node in compiled.root.walk():
        if isinstance(node, SharedScan):
            producer = producer_for(node)
            port = port_by_scan[id(node)]
            producers.append(producer)
            expire_steps.append(PortStep(producer, port))
            for stream in producer.streams:
                dispatch_tables.setdefault(stream, []).append(
                    PortStep(producer, port))
            continue
        op = compiled.op_for(node)
        if id(op) in expire_ids:
            expire_steps.append(OpStep(op))
        if isinstance(node, WindowScan):
            dispatch_tables.setdefault(node.stream.name, []).append(
                LeafStep(op))
    tables = {stream: tuple(steps)
              for stream, steps in dispatch_tables.items()}
    return MemberProgram(tuple(expire_steps), tables, tuple(producers))
