"""Setuptools shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml; this file only enables legacy
editable installs (`pip install -e . --no-use-pep517 --no-build-isolation`)
on offline machines where PEP 660 wheel building is unavailable.
"""

from setuptools import setup

setup()
