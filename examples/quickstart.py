"""Quickstart: a sliding-window join, three execution strategies, one answer.

Builds the simplest interesting continuous query — two windowed streams
joined on a key — runs it under the negative-tuple, direct and
update-pattern-aware strategies, and shows that all three maintain exactly
the answer Definition 1 prescribes while doing very different amounts of
work.

Run:  python examples/quickstart.py
"""

from repro import (
    ContinuousQuery,
    ExecutionConfig,
    Mode,
    Schema,
    StreamDef,
    TimeWindow,
    arrivals,
    attr_equals,
    from_window,
    merge_streams,
)

# 1. Declare two streams, each bounded by a 10-time-unit sliding window.
schema = Schema(["user", "action"])
clicks = StreamDef("clicks", schema, TimeWindow(10))
purchases = StreamDef("purchases", schema, TimeWindow(10))

# 2. Build the plan with the fluent API: clicks ⋈_user purchases, clicks
#    restricted to action = 'view'.
plan = (
    from_window(clicks)
    .where(attr_equals("action", "view"))
    .join(from_window(purchases), on="user")
    .build()
)

# 3. A small, timestamp-ordered event trace.
events = list(merge_streams(
    arrivals("clicks", [
        (1, ("alice", "view")),
        (2, ("bob", "view")),
        (4, ("alice", "scroll")),   # filtered out by the selection
    ]),
    arrivals("purchases", [
        (3, ("alice", "buy")),
        (5, ("carol", "buy")),      # no matching click: never joins
        (9, ("bob", "buy")),
    ]),
))


def main() -> None:
    for mode in (Mode.NT, Mode.DIRECT, Mode.UPA):
        query = ContinuousQuery(plan, ExecutionConfig(mode=mode))
        if mode is Mode.UPA:
            print("Update-pattern-annotated plan:")
            print(query.explain())
            print()
        result = query.run(list(events))
        print(f"{mode.value.upper():>7}: answer={dict(result.answer())} "
              f"touches/tuple={result.touches_per_tuple():.1f}")
    print("\nAll three strategies materialize the same answer; they differ "
          "in how much state maintenance work it costs them.")


if __name__ == "__main__":
    main()
