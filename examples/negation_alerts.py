"""Negation-based alerting: premature expirations in action (Section 3.2).

A security-style query: report source IPs whose traffic on a monitored link
exceeds their traffic on a baseline link (Equation 1's bag negation).  The
interesting behaviour is *strict non-monotonicity*: an alert can be retracted
before its window expiry, the moment matching baseline traffic shows up —
the paper's "premature expiration", signalled with a negative tuple.

The example traces the answer set event by event and then compares the two
STR result-storage schemes of Section 5.3.2 on a larger replay.

Run:  python examples/negation_alerts.py
"""

from repro import Arrival, ContinuousQuery, ExecutionConfig, Mode, Tick
from repro.engine.strategies import STR_NEGATIVE, STR_PARTITIONED
from repro.workloads import TrafficConfig, TrafficTraceGenerator, query3

WINDOW = 60


def trace_answer_evolution() -> None:
    gen = TrafficTraceGenerator(TrafficConfig(n_links=2, n_src_ips=10,
                                              seed=1))
    plan = query3(gen, WINDOW)  # link0 − link1 on src_ip
    query = ContinuousQuery(plan, ExecutionConfig(mode=Mode.UPA))

    def tuple_for(src):
        return (1.0, "telnet", 500, src, "172.16.0.0")

    script = [
        ("suspect traffic arrives on link0", Arrival(1, "link0",
                                                     tuple_for("10.0.0.9"))),
        ("matching baseline traffic on link1 → the alert is retracted "
         "prematurely", Arrival(8, "link1", tuple_for("10.0.0.9"))),
        ("excess suspect traffic arrives → alert again",
         Arrival(30, "link0", tuple_for("10.0.0.9"))),
        ("baseline tuple expires at 68 → the surviving suspect tuple "
         "still alerts", Tick(68.5)),
        ("window passes → everything ages out", Tick(130)),
    ]
    print(f"Alert set evolution (window = {WINDOW}):")
    for label, event in script:
        query.executor.process_event(event)
        alerts = sorted({v[3] for v in query.answer().elements()})
        count = sum(query.answer().values())
        print(f"  t={event.ts:>6}: {label}")
        print(f"           alerts: {count} tuple(s) from {alerts or '{}'}")


def compare_str_storage() -> None:
    print("\nSTR result storage on a 4-link replay "
          "(Section 5.3.2's two choices):")
    for overlap, regime in ((1.0, "shared IP pools (frequent premature "
                                  "expirations)"),
                            (0.0, "disjoint IP pools (no premature "
                                  "expirations)")):
        gen = TrafficTraceGenerator(TrafficConfig(n_links=4, n_src_ips=150,
                                                  ip_overlap=overlap,
                                                  seed=42))
        events = list(gen.events(4000))
        line = [f"  {regime}:"]
        for storage in (STR_PARTITIONED, STR_NEGATIVE):
            query = ContinuousQuery(
                query3(gen, 200),
                ExecutionConfig(mode=Mode.UPA, str_storage=storage))
            result = query.run(iter(events))
            line.append(f"{storage}: {result.touches_per_tuple():.1f} "
                        "touches/tuple")
        print("  ".join(line))


if __name__ == "__main__":
    trace_answer_evolution()
    compare_str_storage()
