"""Financial ticker with metadata — NRRs versus relations (Section 4.1).

The paper motivates non-retroactive relations with exactly this scenario: a
stream of stock quotes joined with a symbol ↔ company table.  When a company
is delisted, previously reported quotes should stand; when a new company
lists, its symbol should not be joined with quotes from before the listing.
An ordinary relation gives the opposite — fully retroactive — behaviour.
This example runs both side by side on the same event trace.

Run:  python examples/financial_ticker_nrr.py
"""

from repro import (
    NRR,
    Arrival,
    ContinuousQuery,
    ExecutionConfig,
    Mode,
    Relation,
    RelationUpdate,
    Schema,
    StreamDef,
    TimeWindow,
    from_window,
)

QUOTES = Schema(["symbol", "price"])
SYMBOLS = Schema(["sym", "company"])

EVENTS = [
    Arrival(1, "quotes", ("ACME", 101.5)),
    Arrival(2, "quotes", ("GLOBEX", 48.2)),
    # GLOBEX is delisted at t=3...
    RelationUpdate(3, "symbols", "delete", ("GLOBEX", "Globex Corp")),
    Arrival(4, "quotes", ("GLOBEX", 47.9)),   # ...so this quote is orphaned
    # INITECH lists at t=5...
    RelationUpdate(5, "symbols", "insert", ("INITECH", "Initech Inc")),
    Arrival(6, "quotes", ("INITECH", 12.0)),  # ...and only new quotes join
    Arrival(7, "quotes", ("ACME", 102.0)),
]

INITIAL_ROWS = [("ACME", "Acme Corp"), ("GLOBEX", "Globex Corp")]


def run(table, join_method: str) -> dict:
    quotes = StreamDef("quotes", QUOTES, TimeWindow(100))
    builder = from_window(quotes)
    if join_method == "nrr":
        plan = builder.join_nrr(table, on="symbol", rel_on="sym").build()
    else:
        plan = builder.join_relation(table, on="symbol",
                                     rel_on="sym").build()
    query = ContinuousQuery(plan, ExecutionConfig(mode=Mode.UPA))
    query.run(list(EVENTS))
    return dict(query.answer())


def describe(answer: dict) -> None:
    for values in sorted(answer, key=lambda v: str(v)):
        symbol, price, _sym, company = values
        print(f"    {symbol:<8} {price:>7}  ({company})")


def main() -> None:
    print("Non-retroactive relation (the paper's NRR semantics):")
    nrr_answer = run(NRR("symbols", SYMBOLS, INITIAL_ROWS), "nrr")
    describe(nrr_answer)
    print("  → GLOBEX's pre-delisting quote survives; INITECH only joins "
          "quotes arriving after its listing.\n")

    print("Ordinary relation (retroactive updates, strict non-monotonic):")
    rel_answer = run(Relation("symbols", SYMBOLS, INITIAL_ROWS), "relation")
    describe(rel_answer)
    print("  → GLOBEX results were retracted with negative tuples, and "
          "INITECH's listing joined the earlier quote retroactively.")


if __name__ == "__main__":
    main()
