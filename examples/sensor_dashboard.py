"""Sensor-network monitoring — the paper's other motivating application.

A field of temperature sensors reports sporadically; a QueryGroup keeps
several standing queries fresh from one pass over the feed:

* a per-sensor dashboard of windowed statistics (count / avg / stddev);
* an anomaly stream of readings far from the fleet's typical range;
* a coverage watchdog over a count-based window (the N most recent reports)
  showing which sensors are still reporting.

Because sensors go quiet, the feed is wrapped in heartbeats so the answers
decay on schedule even with no arrivals — Section 2.3's "the aggregate value
changes as a result of expiration from the input".

Run:  python examples/sensor_dashboard.py
"""

import random

from repro import (
    Arrival,
    CountWindow,
    ExecutionConfig,
    Mode,
    Predicate,
    QueryGroup,
    Schema,
    StreamDef,
    TimeWindow,
    avg,
    count,
    from_window,
    stddev,
    with_heartbeats,
)

READINGS = Schema(["sensor", "temperature"])
WINDOW = 60.0


def sensor_feed(n_events: int, seed: int = 3) -> list:
    """Sporadic readings from ten sensors; sensor_7 dies mid-run and
    sensor_3 starts overheating."""
    rng = random.Random(seed)
    events = []
    ts = 0.0
    for i in range(n_events):
        ts += rng.expovariate(0.8)
        sensor = f"sensor_{rng.randrange(10)}"
        if sensor == "sensor_7" and ts > 120:
            continue  # died
        base = 21.0 + rng.gauss(0, 1.5)
        if sensor == "sensor_3" and ts > 150:
            base += 15.0  # overheating
        events.append(Arrival(ts, "readings", (sensor, round(base, 2))))
    return events


def main() -> None:
    windowed = StreamDef("readings", READINGS, TimeWindow(WINDOW))
    recent = StreamDef("readings", READINGS, CountWindow(25))

    group = QueryGroup()
    group.add(
        "dashboard",
        from_window(windowed).group_by(
            ["sensor"], [count("n"), avg("temperature"),
                         stddev("temperature")]).build(),
        ExecutionConfig(mode=Mode.UPA),
    )
    group.add(
        "anomalies",
        from_window(windowed).where(
            Predicate(("temperature",), lambda v: v[1] > 30.0,
                      "temperature > 30", selectivity=0.02)).build(),
        ExecutionConfig(mode=Mode.UPA),
    )

    # The count window runs in its own (sequence) time domain, so it gets
    # its own query rather than joining the group.
    from repro import ContinuousQuery
    coverage = ContinuousQuery(
        from_window(recent).project("sensor").distinct().build(),
        ExecutionConfig(mode=Mode.UPA))

    feed = sensor_feed(400)
    group.run(with_heartbeats(iter(feed), max_delay=5.0))
    coverage.run(iter(feed))

    print("Per-sensor dashboard (last "
          f"{WINDOW:.0f}s of readings):")
    print(f"  {'sensor':<12}{'n':>4}{'avg °C':>9}{'σ':>7}")
    for (sensor,), result in sorted(group["dashboard"].compiled.view
                                    .groups().items()):
        _s, n, mean, sd = result.values
        print(f"  {sensor:<12}{n:>4}{mean:>9.2f}{sd:>7.2f}")

    anomalies = group["anomalies"].answer()
    hot = sorted({values[0] for values in anomalies})
    print(f"\nLive anomaly tuples: {sum(anomalies.values())} "
          f"(sensors: {', '.join(hot) or 'none'})")

    reporting = sorted(v[0] for v in coverage.answer())
    silent = sorted({f"sensor_{i}" for i in range(10)} - set(reporting))
    print(f"\nSensors among the 25 most recent reports: {len(reporting)}")
    print(f"Silent sensors: {', '.join(silent) or 'none'}")


if __name__ == "__main__":
    main()
