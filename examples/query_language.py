"""The query-language front-end, end to end.

Registers the traffic streams plus a metadata NRR in a catalog, compiles
several textual queries into annotated plans, and runs them over a synthetic
trace whose events arrive slightly out of order (scrubbed by the bounded
reorder buffer).  The same queries can be run from the shell:

    python -m repro generate --tuples 4000 --out /tmp/trace.tsv
    python -m repro run "SELECT protocol, COUNT(*) AS flows FROM link0 \
        [RANGE 120] GROUP BY protocol" --trace /tmp/trace.tsv

Run:  python examples/query_language.py
"""

import random

from repro import (
    NRR,
    Arrival,
    ContinuousQuery,
    ExecutionConfig,
    Mode,
    ReorderBuffer,
    Schema,
    SourceCatalog,
    compile_query,
)
from repro.workloads import TRAFFIC_SCHEMA, TrafficConfig, TrafficTraceGenerator

QUERIES = [
    "SELECT DISTINCT src_ip FROM link0 [RANGE 120] WHERE protocol = 'telnet'",
    ("SELECT * FROM link0 [RANGE 120] JOIN link1 [RANGE 120] "
     "ON link0.src_ip = link1.src_ip WHERE l_protocol = 'telnet'"),
    "SELECT src_ip FROM link0 [RANGE 120] MINUS link1 [RANGE 120] ON src_ip",
    ("SELECT protocol, COUNT(*) AS flows, AVG(bytes) AS avg_bytes, "
     "STDDEV(bytes) AS sd_bytes FROM link0 [RANGE 120] GROUP BY protocol"),
    "SELECT * FROM link0 [RANGE 120] JOIN watchlist ON src_ip = ip",
]


def scrambled_trace(n_tuples: int) -> list:
    """The synthetic trace with mild, bounded timestamp jitter."""
    gen = TrafficTraceGenerator(TrafficConfig(n_links=2, n_src_ips=60,
                                              seed=11))
    rng = random.Random(0)
    return [Arrival(e.ts + rng.uniform(0, 3), e.stream, e.values)
            for e in gen.events(n_tuples)]


def main() -> None:
    catalog = SourceCatalog()
    catalog.add_stream("link0", TRAFFIC_SCHEMA)
    catalog.add_stream("link1", TRAFFIC_SCHEMA)
    watchlist = NRR("watchlist", Schema(["ip", "reason"]),
                    [("10.0.0.1", "known scanner"),
                     ("10.0.0.2", "tarpit")])
    catalog.add_relation(watchlist)

    events = scrambled_trace(3000)
    for text in QUERIES:
        plan = compile_query(text, catalog)
        query = ContinuousQuery(plan, ExecutionConfig(mode=Mode.UPA))
        # The jittered feed violates the engine's in-order assumption; a
        # reorder buffer with enough slack restores it.
        result = query.run(ReorderBuffer(slack=5.0).reorder(iter(events)))
        print(text)
        print(f"  -> {sum(result.answer().values())} live result tuple(s), "
              f"{result.touches_per_tuple():.1f} touches/tuple")
        print("  " + query.explain().replace("\n", "\n  "))
        print()


if __name__ == "__main__":
    main()
