"""IP traffic monitoring — the paper's motivating workload (Section 6.1).

Replays a synthetic wide-area TCP trace (the stand-in for the LBL-TCP-3
archive trace) through the paper's five experimental queries and reports
what each strategy maintains, exactly like a network operator's dashboard
would: which source IPs appear on several outgoing links, which are unique
to one link, and per-protocol traffic aggregates.

Run:  python examples/traffic_monitoring.py
"""

from repro import ContinuousQuery, ExecutionConfig, Mode, count, agg_sum, from_window
from repro.workloads import (
    TrafficConfig,
    TrafficTraceGenerator,
    query1,
    query2,
    query3,
)

WINDOW = 120            # time units ≈ tuples per link
N_EVENTS = 2_000


def main() -> None:
    gen = TrafficTraceGenerator(TrafficConfig(n_links=4, n_src_ips=120,
                                              seed=7))
    events = list(gen.events(N_EVENTS))
    print(f"trace: {N_EVENTS} tuples over {events[-1].ts:.0f} time units, "
          f"4 links, window = {WINDOW}\n")

    # -- Query 1: correlated telnet sessions across two links --------------
    q1 = ContinuousQuery(query1(gen, WINDOW, "telnet"),
                         ExecutionConfig(mode=Mode.UPA))
    r1 = q1.run(iter(events))
    print(f"Q1  telnet join across links 0 and 1: "
          f"{sum(r1.answer().values())} live correlated pairs "
          f"({r1.time_per_1000()*1000:.1f} ms / 1000 tuples)")

    # -- Query 2: distinct sources on link 0 -------------------------------
    q2 = ContinuousQuery(query2(gen, WINDOW), ExecutionConfig(mode=Mode.UPA))
    r2 = q2.run(iter(events))
    print(f"Q2  distinct sources on link 0: {len(r2.answer())} live IPs")

    # -- Query 3: sources seen on link 0 but not on link 1 -----------------
    q3 = ContinuousQuery(query3(gen, WINDOW), ExecutionConfig(mode=Mode.UPA))
    r3 = q3.run(iter(events))
    unique = {values[3] for values in r3.answer()}
    print(f"Q3  sources on link 0 with excess traffic over link 1: "
          f"{len(unique)} IPs")

    # -- Per-protocol dashboard over link 0 --------------------------------
    dash_plan = (from_window(gen.stream_def(0, WINDOW))
                 .group_by(["protocol"], [count("flows"),
                                          agg_sum("bytes", "bytes")])
                 .build())
    dash = ContinuousQuery(dash_plan, ExecutionConfig(mode=Mode.UPA))
    dash.run(iter(events))
    print("\nLive per-protocol dashboard (link 0):")
    print(f"  {'protocol':<10}{'flows':>8}{'bytes':>12}")
    groups = sorted(dash.compiled.view.groups().items(),
                    key=lambda kv: -kv[1].values[1])
    for (protocol,), result in groups:
        _p, flows, total = result.values
        print(f"  {protocol:<10}{flows:>8}{total:>12}")


if __name__ == "__main__":
    main()
