"""A tour of update-pattern-aware optimization (Sections 5.2 and 5.4).

Walks through what the optimizer sees for the paper's Query 5:

1. annotate both Figure 6 rewritings with update patterns;
2. estimate their per-unit-time costs from workload statistics;
3. enumerate the rewrite closure and pick the cheapest plan;
4. execute both rewritings and check the prediction against measured work.

Run:  python examples/optimizer_tour.py
"""

from repro import ContinuousQuery, ExecutionConfig, Mode, explain
from repro.core.cost import Catalog, CostModel
from repro.core.optimizer import Optimizer
from repro.engine.strategies import STR_NEGATIVE
from repro.workloads import (
    TrafficConfig,
    TrafficTraceGenerator,
    query5_pullup,
    query5_pushdown,
)

# Large enough that the rewritings' asymptotic ordering is unambiguous
# (below W≈200 the pull-up plan's small-state constants win; see
# EXPERIMENTS.md, E8).
WINDOW = 400


def main() -> None:
    gen = TrafficTraceGenerator(TrafficConfig(n_links=4, n_src_ips=150,
                                              seed=42))
    catalog = Catalog(
        distinct_counts={(f"link{i}", attr): est
                         for i in range(4)
                         for attr, est in
                         gen.estimated_distincts(WINDOW).items()},
        premature_frequency=0.5,
    )
    model = CostModel(catalog)

    plans = {
        "negation pull-up  (Fig 6, left)": query5_pullup(gen, WINDOW),
        "negation push-down (Fig 6, right)": query5_pushdown(gen, WINDOW),
    }

    print("1) Update-pattern annotation — note where STR edges appear:\n")
    for name, plan in plans.items():
        print(f"-- {name}")
        print(explain(plan))
        print()

    print("2) Cost model estimates (per unit time):")
    for name, plan in plans.items():
        print(f"   {name:<36} {model.estimate(plan).total:10.1f}")

    from repro.core.cost import explain_with_cost
    print("\n   EXPLAIN with per-node stats (push-down plan):")
    print("   " + explain_with_cost(
        query5_pushdown(gen, WINDOW), catalog).replace("\n", "\n   "))

    print("\n3) Optimizer over the rewrite closure:")
    optimizer = Optimizer(catalog)
    ranked = optimizer.rank(query5_pushdown(gen, WINDOW))
    print(f"   {len(ranked)} candidate plans; cheapest: "
          f"{ranked[0].plan.describe()} at cost {ranked[0].total_cost:.1f}")

    print("\n4) Measured deterministic work (touches/event, hybrid UPA):")
    events = list(gen.events(int(3 * WINDOW * 4)))
    for name, plan in plans.items():
        query = ContinuousQuery(plan, ExecutionConfig(
            mode=Mode.UPA, str_storage=STR_NEGATIVE))
        result = query.run(iter(events))
        print(f"   {name:<36} {result.touches_per_tuple():10.1f}")
    print("\nThe cheaper-predicted rewriting is also the cheaper-measured "
          "one on this workload (experiment E8 asserts this in CI).")


if __name__ == "__main__":
    main()
