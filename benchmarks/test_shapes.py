"""Deterministic shape assertions: the paper's qualitative claims.

These tests do not measure wall time (noisy in CI); they assert on *state
touches*, which are deterministic for a fixed trace, and pin the relative
behaviour the paper reports: who wins, how DIRECT degrades with window size,
that δ's state stays bounded, and that the two STR storage schemes each have
their regime.  They run as part of the benchmark suite because they replay
full traces.
"""

import dataclasses

import pytest

from repro import ContinuousQuery, ExecutionConfig, Mode
from repro.engine.strategies import STR_NEGATIVE, STR_PARTITIONED
from repro.workloads import query1, query2, query3, query4

from .common import BENCH_TRAFFIC, make_generator, trace_for


def touches(plan, events, **cfg):
    query = ContinuousQuery(plan, ExecutionConfig(**cfg))
    result = query.run(iter(events))
    return result.touches_per_tuple()


class TestDirectDegradesWithWindow:
    """Figure 10's shape: DIRECT's per-tuple work grows superlinearly with
    the window while UPA's stays an order of magnitude below."""

    def test_query1_telnet(self):
        gen = make_generator()
        ratios = {}
        for window in (100, 200, 400):
            events = trace_for(window)
            plan = query1(gen, window, "telnet")
            direct = touches(plan, events, mode=Mode.DIRECT)
            upa = touches(query1(gen, window, "telnet"), events,
                          mode=Mode.UPA)
            ratios[window] = direct / upa
        # The gap widens with the window and exceeds 10x well before the
        # paper's largest configurations.
        assert ratios[100] < ratios[200] < ratios[400]
        assert ratios[400] > 10

    def test_query2_distinct(self):
        gen = make_generator()
        events = trace_for(200)
        plan = query2(gen, 200)
        assert touches(plan, events, mode=Mode.DIRECT) > \
            10 * touches(query2(gen, 200), events, mode=Mode.UPA)


class TestUpaBeatsNt:
    """UPA must do less deterministic work than NT on the paper queries
    (NT processes every tuple twice)."""

    @pytest.mark.parametrize("plan_fn", [query2, query4],
                             ids=["query2", "query4"])
    def test_touches(self, plan_fn):
        gen = make_generator()
        events = trace_for(200)
        nt = touches(plan_fn(gen, 200), events, mode=Mode.NT)
        upa = touches(plan_fn(gen, 200), events, mode=Mode.UPA)
        assert upa < nt


class TestDeltaSpaceBound:
    """Section 5.3.1: δ stores at most twice its output; the standard
    operator additionally stores the whole input window."""

    def test_state_sizes(self):
        gen = make_generator()
        window = 300
        events = trace_for(window)
        delta_query = ContinuousQuery(query2(gen, window),
                                      ExecutionConfig(mode=Mode.UPA))
        std_query = ContinuousQuery(query2(gen, window),
                                    ExecutionConfig(mode=Mode.DIRECT))
        delta_query.run(iter(events))
        std_query.run(iter(events))
        delta_state = delta_query.compiled.state_size()
        std_state = std_query.compiled.state_size()
        n_distinct = len(delta_query.answer())
        assert delta_state <= 2 * n_distinct
        # The standard operator keeps the input window too (lazily purged),
        # so its state must dominate δ's by roughly the live window size.
        assert std_state > delta_state + window / 2


class TestStrStorageRegimes:
    """Section 5.3.2: hybrid (negative) storage pays off when premature
    expirations dominate; its advantage must shrink (or reverse) when they
    never happen."""

    def test_premature_frequency_drives_the_gap(self):
        gaps = {}
        for overlap in (1.0, 0.0):
            config = dataclasses.replace(BENCH_TRAFFIC, ip_overlap=overlap)
            gen = make_generator(config)
            events = trace_for(200, config)
            part = touches(query3(gen, 200), events, mode=Mode.UPA,
                           str_storage=STR_PARTITIONED)
            neg = touches(query3(gen, 200), events, mode=Mode.UPA,
                          str_storage=STR_NEGATIVE)
            gaps[overlap] = part / neg
        # With full overlap (many premature expirations) the negative scheme
        # helps more than it does with disjoint IP pools (none).
        assert gaps[1.0] > gaps[0.0]


class TestMoreTuplesForNt:
    """Section 2.3.1: 'twice as many tuples must be processed' under NT."""

    def test_tuple_counts(self):
        gen = make_generator()
        events = trace_for(200)
        counts = {}
        for mode in (Mode.NT, Mode.UPA):
            query = ContinuousQuery(query1(gen, 200, "telnet"),
                                    ExecutionConfig(mode=mode))
            query.run(iter(events))
            counts[mode] = query.counters.negatives_processed
        assert counts[Mode.NT] > 0
        assert counts[Mode.UPA] == 0  # negation-free UPA plan: no negatives
