"""E4 / Figure 12: Query 3 (negation) — STR result-storage choices."""

import pytest

from repro import ExecutionConfig, Mode
from repro.engine.strategies import STR_NEGATIVE, STR_PARTITIONED
from repro.workloads import query3

from .bench_util import bench

CONFIGS = [
    ("nt", ExecutionConfig(mode=Mode.NT)),
    ("upa-partitioned", ExecutionConfig(mode=Mode.UPA,
                                        str_storage=STR_PARTITIONED)),
    ("upa-negative", ExecutionConfig(mode=Mode.UPA,
                                     str_storage=STR_NEGATIVE)),
]


@pytest.mark.parametrize("label,config", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_query3_negation(benchmark, label, config):
    bench(benchmark, query3, config)
