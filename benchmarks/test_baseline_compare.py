"""The committed bench baseline and its comparison gate.

Two things must hold for the perf trajectory to be trustworthy: the
checked-in ``benchmarks/baselines/BENCH_program.json`` is schema-valid
and covers the specialized + interpreted label matrix, and
``baseline_compare`` actually flags regressions and dropped coverage
(a gate that cannot fail is decoration).
"""

from __future__ import annotations

import copy
import json
import os

from .baseline_compare import compare_documents, main as compare_main
from .harness import BENCH_SCHEMA
from .test_program_overhead import PROGRAM_BASELINES

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baselines",
                             "BENCH_program.json")


def _baseline() -> dict:
    with open(BASELINE_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestCommittedBaseline:
    def test_schema_and_coverage(self):
        document = _baseline()
        assert document["schema"] == BENCH_SCHEMA
        assert document["experiment"] == "program"
        labels = {record["label"] for record in document["records"]}
        assert labels == set(PROGRAM_BASELINES) | {
            f"{label}/interp" for label in PROGRAM_BASELINES}
        for record in document["records"]:
            assert record["time_ms_per_1000"] > 0, record["label"]
            assert record["events"] > 0, record["label"]

    def test_baseline_passes_against_itself(self):
        document = _baseline()
        assert compare_documents(document, document) == []


class TestCompareGate:
    def test_regression_is_flagged(self):
        baseline = _baseline()
        slowed = copy.deepcopy(baseline)
        slowed["records"][0]["time_ms_per_1000"] *= 100.0
        # Fresh run 100x slower than baseline in one cell: must fire.
        violations = compare_documents(baseline, slowed, tolerance=4.0)
        assert len(violations) == 1
        assert "ms/1k > 4.0x baseline" in violations[0]

    def test_dropped_coverage_is_flagged(self):
        baseline = _baseline()
        shrunk = copy.deepcopy(baseline)
        dropped = shrunk["records"].pop(0)
        violations = compare_documents(baseline, shrunk)
        assert any(dropped["label"] in v and "missing" in v
                   for v in violations)

    def test_speedups_and_new_cells_pass(self):
        baseline = _baseline()
        improved = copy.deepcopy(baseline)
        for record in improved["records"]:
            record["time_ms_per_1000"] /= 2.0
        improved["records"].append(dict(improved["records"][0],
                                        label="E99", window=1000))
        assert compare_documents(baseline, improved) == []

    def test_cli_exit_codes(self, tmp_path):
        baseline = _baseline()
        good = tmp_path / "good.json"
        good.write_text(json.dumps(baseline))
        assert compare_main([BASELINE_PATH, str(good)]) == 0
        bad_doc = copy.deepcopy(baseline)
        bad_doc["records"][0]["time_ms_per_1000"] *= 100.0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(bad_doc))
        assert compare_main([BASELINE_PATH, str(bad)]) == 1
