"""Multi-query scaling: shared vs independent QueryGroup execution.

The ROADMAP's north star is many standing queries over one feed.  This
benchmark scales an overlapping query mix to N ∈ {1, 4, 16} members and
runs it through both regimes.  Wall-clock per 1000 arrivals and the
deterministic state-touch totals (member residuals + shared producers) go
into the benchmark JSON via ``extra_info``; the smoke test asserts the
design goal — shared-mode state touches grow *sublinearly* in N because
common subplans are maintained once, not once per query.
"""

from __future__ import annotations

import pytest

from repro import ExecutionConfig, Mode, QueryGroup
from repro.workloads import query1, query2, query4

from .common import make_generator, trace_for

WINDOW = 100
GROUP_SIZES = (1, 4, 16)

#: Overlapping mix: repeated whole plans (fused outright at N >= 5) plus
#: distinct queries that still share window scans over link0/link1.
MIX = (
    lambda gen, w: query1(gen, w, "ftp"),
    lambda gen, w: query1(gen, w, "telnet"),
    lambda gen, w: query2(gen, w),
    lambda gen, w: query4(gen, w),
)


def build_group(n: int, shared: bool) -> QueryGroup:
    gen = make_generator()
    group = QueryGroup(shared=shared)
    config = ExecutionConfig(mode=Mode.UPA)
    for index in range(n):
        factory = MIX[index % len(MIX)]
        group.add(f"q{index}", factory(gen, WINDOW), config)
    return group


def run_group(n: int, shared: bool):
    group = build_group(n, shared)
    result = group.run(iter(trace_for(WINDOW)), batch=64)
    return group, result


@pytest.mark.parametrize("regime", ["shared", "independent"])
@pytest.mark.parametrize("n", GROUP_SIZES)
def test_group_scaling(benchmark, n, regime):
    shared = regime == "shared"

    def target():
        return run_group(n, shared)

    group, result = benchmark.pedantic(target, rounds=1, iterations=1)
    residual = sum(result.touches().values())
    benchmark.extra_info["n_queries"] = n
    benchmark.extra_info["regime"] = regime
    benchmark.extra_info["time_ms_per_1000"] = round(
        result.time_per_1000() * 1000.0, 3)
    benchmark.extra_info["per_query_time_ms_per_1000"] = round(
        result.time_per_1000() * 1000.0 / n, 3)
    benchmark.extra_info["residual_touches"] = residual
    benchmark.extra_info["shared_touches"] = result.shared_touches()
    benchmark.extra_info["total_touches"] = result.total_touches()
    benchmark.extra_info["shared_producers"] = len(group.shared_producers())
    benchmark.extra_info["shared_state_tuples"] = group.shared_state_size()
    assert result.tuples_arrived > 0


def test_sharing_is_sublinear_smoke():
    """Deterministic acceptance check, independent of wall-clock noise."""
    totals = {}
    for n in GROUP_SIZES:
        _, shared_result = run_group(n, shared=True)
        _, independent_result = run_group(n, shared=False)
        totals[n] = (shared_result.total_touches(),
                     independent_result.total_touches())
        # Transparency first: both regimes answer identically.
        shared_group, _ = run_group(n, shared=True)
        independent_group, _ = run_group(n, shared=False)
        assert shared_group.answers() == independent_group.answers()
    # At N=16 the fused runtime must touch strictly less state than
    # independent execution...
    assert totals[16][0] < totals[16][1]
    # ... and grow sublinearly: quadrupling 4 -> 16 members costs the
    # shared regime less than 4x (independent execution is exactly linear
    # in the membership by construction) ...
    assert totals[16][0] < 4 * totals[4][0]
    # ... so the shared/independent work ratio improves as the group grows.
    assert (totals[16][0] / totals[16][1]
            < totals[4][0] / totals[4][1])
