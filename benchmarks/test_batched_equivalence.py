"""Batched ≡ per-tuple equivalence over the E1–E5 query/strategy matrix.

The micro-batch execution path (``run(..., batch=N)``) must be *exactly*
transparent: same subscriber output stream (insertions and negative tuples,
in order), same final answer multiset, and the same number of expirations —
for every experimental query under every strategy it supports.  These are
plain pytest tests (no benchmark fixture) so they can run anywhere.
"""

from __future__ import annotations

import pytest

from repro import ContinuousQuery, ExecutionConfig, Mode
from repro.engine.strategies import STR_NEGATIVE, STR_PARTITIONED
from repro.workloads import query1, query2, query3, query4

from .common import make_generator, trace_for

WINDOW = 40
#: The ftp⋈ftp join is so selective it emits nothing on the small trace;
#: it gets a larger window so the non-vacuousness guard has teeth.
FTP_WINDOW = 80

_STANDARD = [("nt", ExecutionConfig(mode=Mode.NT)),
             ("direct", ExecutionConfig(mode=Mode.DIRECT)),
             ("upa", ExecutionConfig(mode=Mode.UPA))]

#: (case id, plan factory, config, window) — one row per E1–E5 cell.
CASES = (
    [(f"e1-query1-ftp-{label}", lambda gen, w: query1(gen, w, "ftp"),
      cfg, FTP_WINDOW)
     for label, cfg in _STANDARD]
    + [(f"e2-query1-telnet-{label}",
        lambda gen, w: query1(gen, w, "telnet"), cfg, WINDOW)
       for label, cfg in _STANDARD]
    + [(f"e3-query2-src-{label}",
        lambda gen, w: query2(gen, w, pairs=False), cfg, WINDOW)
       for label, cfg in _STANDARD]
    + [(f"e3-query2-pairs-{label}",
        lambda gen, w: query2(gen, w, pairs=True), cfg, WINDOW)
       for label, cfg in _STANDARD]
    + [("e4-query3-nt", query3, ExecutionConfig(mode=Mode.NT), WINDOW),
       ("e4-query3-upa-partitioned", query3,
        ExecutionConfig(mode=Mode.UPA, str_storage=STR_PARTITIONED), WINDOW),
       ("e4-query3-upa-negative", query3,
        ExecutionConfig(mode=Mode.UPA, str_storage=STR_NEGATIVE), WINDOW)]
    + [(f"e5-query4-{label}", query4, cfg, WINDOW)
       for label, cfg in _STANDARD]
)


def _run(plan_factory, config: ExecutionConfig, window: float,
         batch: int | None):
    """One full replay; returns (output stream, answer, expirations)."""
    plan = plan_factory(make_generator(), window)
    query = ContinuousQuery(plan, config)
    outputs = []
    query.subscribe(lambda t, now: outputs.append((t, now)))
    query.run(iter(trace_for(window)), batch=batch)
    return outputs, query.answer(), query.counters.expirations


@pytest.mark.parametrize("name,plan_factory,config,window", CASES,
                         ids=[c[0] for c in CASES])
@pytest.mark.parametrize("batch", [2, 64])
def test_batched_matches_per_tuple(name, plan_factory, config, window,
                                   batch):
    base_out, base_answer, base_exp = _run(plan_factory, config, window,
                                           None)
    out, answer, exp = _run(plan_factory, config, window, batch)
    assert out == base_out
    assert answer == base_answer
    assert exp == base_exp
    assert base_out, "trace produced no output — test would be vacuous"
