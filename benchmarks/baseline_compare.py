"""Compare a fresh ``BENCH_<exp>.json`` against a committed baseline.

The bench trajectory is only useful if regressions are visible: this
module pairs the records of a freshly generated bench document with a
checked-in baseline (``benchmarks/baselines/BENCH_<exp>.json``) by
``(label, window)`` and flags any cell whose ``time_ms_per_1000`` grew
beyond a tolerance factor.  Cross-host and CI-runner variance is large,
so the default tolerance is deliberately generous
(``REPRO_BENCH_BASELINE_TOL``, default 4.0x) — the gate exists to catch
order-of-magnitude regressions and silently dropped coverage, not single
-digit percent drift (that is what ``test_program_overhead.py``'s paired
same-host comparisons are for).

CLI: ``python -m benchmarks.baseline_compare BASELINE FRESH [--tol X]``
exits non-zero listing every violation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Cross-host headroom: a committed baseline from one machine vs a CI
#: runner can legitimately differ severalfold in absolute wall-clock.
DEFAULT_TOLERANCE = float(
    os.environ.get("REPRO_BENCH_BASELINE_TOL", "4.0"))


def _cells(document: dict) -> dict:
    """(label, window) -> time_ms_per_1000 for every measurement record."""
    cells = {}
    for record in document.get("records", ()):
        label, window = record.get("label"), record.get("window")
        time_ms = record.get("time_ms_per_1000")
        if label is None or window is None or time_ms is None:
            continue  # bare-tuple experiments (e8, e10) carry no cells
        cells[(label, window)] = time_ms
    return cells


def compare_documents(baseline: dict, fresh: dict,
                      tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Return a list of human-readable violations (empty = within gate).

    Violations are: a baseline cell missing from the fresh run (dropped
    coverage), or a fresh cell slower than ``tolerance`` x its baseline.
    Cells new in the fresh run are fine — coverage may grow.
    """
    violations: list[str] = []
    if baseline.get("schema") != fresh.get("schema"):
        violations.append(
            f"schema mismatch: baseline {baseline.get('schema')!r} vs "
            f"fresh {fresh.get('schema')!r}")
    base_cells = _cells(baseline)
    fresh_cells = _cells(fresh)
    if not base_cells:
        violations.append("baseline document has no measurement cells")
    for key in sorted(base_cells, key=str):
        if key not in fresh_cells:
            violations.append(
                f"{key[0]} W={key[1]}: cell present in the baseline but "
                "missing from the fresh run")
            continue
        base_time, fresh_time = base_cells[key], fresh_cells[key]
        if fresh_time > tolerance * base_time:
            violations.append(
                f"{key[0]} W={key[1]}: {fresh_time:.2f} ms/1k > "
                f"{tolerance}x baseline {base_time:.2f}")
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare a fresh BENCH json against a committed "
                    "baseline within a tolerance factor")
    parser.add_argument("baseline", help="committed BENCH_<exp>.json")
    parser.add_argument("fresh", help="freshly generated BENCH_<exp>.json")
    parser.add_argument("--tol", type=float, default=DEFAULT_TOLERANCE,
                        help="slowdown factor allowed per cell "
                             f"(default {DEFAULT_TOLERANCE})")
    args = parser.parse_args(argv)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.fresh, encoding="utf-8") as handle:
        fresh = json.load(handle)
    violations = compare_documents(baseline, fresh, args.tol)
    if violations:
        print(f"bench baseline gate FAILED ({len(violations)} cell(s)):")
        for violation in violations:
            print(f"  {violation}")
        return 1
    compared = len(_cells(baseline))
    print(f"bench baseline gate ok: {compared} cell(s) within "
          f"{args.tol}x of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
