"""The nine experiments of the reproduction (see DESIGN.md's index).

Each function returns the list of measurements and prints the paper-style
table.  ``python -m benchmarks.harness all`` runs everything.
"""

from __future__ import annotations

import dataclasses

from repro import ExecutionConfig, Mode
from repro.core.cost import Catalog, CostModel
from repro.engine.strategies import STR_NEGATIVE, STR_PARTITIONED
from repro.workloads import (
    TrafficConfig,
    query1,
    query2,
    query3,
    query4,
    query5_pullup,
    query5_pushdown,
)

from .common import (
    BENCH_TRAFFIC,
    Measurement,
    make_generator,
    print_table,
    run_once,
    speedup_summary,
    standard_strategies,
    sweep,
    trace_for,
    windows,
)

ALL_STRATEGIES = standard_strategies(Mode.NT, Mode.DIRECT, Mode.UPA)
STRICT_STRATEGIES = [
    ("NT", lambda: ExecutionConfig(mode=Mode.NT)),
    ("UPA-part", lambda: ExecutionConfig(mode=Mode.UPA,
                                         str_storage=STR_PARTITIONED)),
    ("UPA-neg", lambda: ExecutionConfig(mode=Mode.UPA,
                                        str_storage=STR_NEGATIVE)),
]


def e1_query1_ftp() -> list[Measurement]:
    """Figure 9: Query 1 with the selective ftp predicate."""
    results = sweep(lambda gen, w: query1(gen, w, "ftp"), ALL_STRATEGIES)
    print_table("E1 / Fig 9 — Query 1 (ftp join), time vs window", results)
    return results


def e2_query1_telnet() -> list[Measurement]:
    """Figure 10: Query 1 with the high-output telnet predicate."""
    results = sweep(lambda gen, w: query1(gen, w, "telnet"), ALL_STRATEGIES)
    print_table("E2 / Fig 10 — Query 1 (telnet join), time vs window",
                results)
    print("  DIRECT/UPA touch ratio:",
          {w: round(r, 1) for w, r in
           speedup_summary(results, "DIRECT", "UPA").items()})
    return results


def e3_query2_distinct() -> list[Measurement]:
    """Figure 11: Query 2 — δ vs the standard duplicate elimination."""
    out: list[Measurement] = []
    for pairs, tag in ((False, "src"), (True, "src-dst")):
        results = sweep(lambda gen, w, p=pairs: query2(gen, w, pairs=p),
                        ALL_STRATEGIES)
        print_table(f"E3 / Fig 11 — Query 2 (distinct {tag}), time vs window",
                    results)
        out.extend(results)
    return out


def e4_query3_negation() -> list[Measurement]:
    """Figure 12: Query 3 — STR result storage under two premature-
    expiration regimes (controlled by the links' source-IP overlap)."""
    out: list[Measurement] = []
    for overlap, tag in ((1.0, "high overlap / frequent premature"),
                         (0.0, "no overlap / no premature")):
        config = dataclasses.replace(BENCH_TRAFFIC, ip_overlap=overlap)
        results = sweep(query3, STRICT_STRATEGIES, config=config)
        print_table(f"E4 / Fig 12 — Query 3 (negation), {tag}", results)
        out.extend(results)
    return out


def e5_query4_distinct_join() -> list[Measurement]:
    """Figure 13: Query 4 — δ feeding a join with partitioned state."""
    results = sweep(query4, ALL_STRATEGIES)
    print_table("E5 / Fig 13 — Query 4 (distinct + join), time vs window",
                results)
    return results


def e6_query5_rewritings() -> list[Measurement]:
    """Figure 14: both Figure 6 rewritings of Query 5 under each STR
    execution choice.

    Two overlap regimes expose both sides of the paper's discussion
    (Section 5.4.3): with full source-IP overlap the negation drastically
    reduces the join input and push-down wins; with partial overlap the
    negation removes little but still churns out premature negatives, which
    is where pulling it above the join pays off.
    """
    out: list[Measurement] = []
    for overlap, regime in ((1.0, "full overlap"), (0.25, "partial overlap")):
        config = dataclasses.replace(BENCH_TRAFFIC, ip_overlap=overlap)
        regime_results: list[Measurement] = []
        for plan_fn, tag in ((query5_pullup, "pull-up"),
                             (query5_pushdown, "push-down")):
            results = sweep(plan_fn, STRICT_STRATEGIES, config=config)
            for m in results:
                m.label = f"{tag}/{m.label}"
            regime_results.extend(results)
        print_table(
            f"E6 / Fig 14 — Query 5, pull-up vs push-down ({regime})",
            regime_results)
        out.extend(regime_results)
    return out


def e7_partition_sweep(window: float = 400) -> list[Measurement]:
    """Figure 15: effect of the number of partitions (Query 1, telnet)."""
    gen = make_generator()
    events = trace_for(window)
    results: list[Measurement] = []
    for n_partitions in (1, 2, 5, 10, 20, 50):
        plan = query1(gen, window, "telnet")
        m = run_once(plan, events,
                     ExecutionConfig(mode=Mode.UPA,
                                     n_partitions=n_partitions),
                     "UPA", window)
        m.window = n_partitions  # row key is the partition count here
        results.append(m)
    print_table(f"E7 / Fig 15 — Query 1 (telnet), W={window}, "
                "time vs number of partitions", results,
                row_key="partitions")
    return results


def e8_cost_model(window: float = 400) -> list[tuple[str, float, float]]:
    """Cost-model validation: does the predicted per-unit-time cost rank
    Query 5's rewritings the same way measured work does?"""
    gen = make_generator()
    events = trace_for(window)
    catalog = Catalog(
        distinct_counts={(f"link{i}", attr): est
                         for i in range(4)
                         for attr, est in
                         gen.estimated_distincts(window).items()},
        premature_frequency=0.5,
    )
    model = CostModel(catalog)
    rows: list[tuple[str, float, float]] = []
    for plan_fn, tag in ((query5_pullup, "pull-up"),
                         (query5_pushdown, "push-down")):
        plan = plan_fn(gen, window)
        predicted = model.estimate(plan).total
        measured = run_once(
            plan, events,
            ExecutionConfig(mode=Mode.UPA, str_storage=STR_NEGATIVE),
            tag, window)
        rows.append((tag, predicted, measured.touches_per_event))
    print(f"\n== E8 — cost model vs measured (Query 5, W={window}) ==")
    print(f"{'plan':<12}{'predicted cost':>16}{'measured tch/ev':>18}")
    for tag, predicted, measured in rows:
        print(f"{tag:<12}{predicted:>16.1f}{measured:>18.1f}")
    predicted_order = [t for t, _p, _m in
                       sorted(rows, key=lambda r: r[1])]
    measured_order = [t for t, _p, _m in
                      sorted(rows, key=lambda r: r[2])]
    print(f"  predicted order: {predicted_order}; "
          f"measured order: {measured_order}; "
          f"agreement: {predicted_order == measured_order}")
    return rows


def e9_lazy_interval(window: float = 400) -> list[Measurement]:
    """Lazy-expiration-interval sensitivity (Section 6.1 notes longer
    intervals are slightly faster at higher memory)."""
    gen = make_generator()
    events = trace_for(window)
    results: list[Measurement] = []
    for fraction in (0.01, 0.05, 0.10, 0.20):
        plan = query1(gen, window, "telnet")
        m = run_once(plan, events,
                     ExecutionConfig(mode=Mode.UPA,
                                     lazy_interval=fraction * window),
                     "UPA", window)
        m.window = fraction
        results.append(m)
    print_table(f"E9 — Query 1 (telnet), W={window}, time vs lazy interval "
                "(fraction of window)", results, row_key="interval")
    return results


def e10_memory(window: float = 400) -> list[tuple[str, int, int, float]]:
    """Memory ablation (§5.4.2): peak state across strategies and against
    the lazy interval and δ-vs-standard duplicate elimination."""
    from repro import ContinuousQuery
    from repro.engine.profiling import profile_memory

    gen = make_generator()
    events = trace_for(window)
    rows: list[tuple[str, int, int, float]] = []

    def run(label: str, plan, **cfg):
        query = ContinuousQuery(plan, ExecutionConfig(**cfg))
        result, profile = profile_memory(query, iter(events),
                                         sample_every=50)
        rows.append((label, profile.peak_state, profile.peak_view,
                     result.time_per_1000() * 1000.0))

    run("Q1/NT", query1(gen, window, "telnet"), mode=Mode.NT)
    run("Q1/DIRECT", query1(gen, window, "telnet"), mode=Mode.DIRECT)
    run("Q1/UPA", query1(gen, window, "telnet"), mode=Mode.UPA)
    run("Q1/UPA lazy=1%", query1(gen, window, "telnet"), mode=Mode.UPA,
        lazy_interval=0.01 * window)
    run("Q1/UPA lazy=25%", query1(gen, window, "telnet"), mode=Mode.UPA,
        lazy_interval=0.25 * window)
    run("Q2/standard (DIRECT)", query2(gen, window), mode=Mode.DIRECT)
    run("Q2/delta (UPA)", query2(gen, window), mode=Mode.UPA)

    print(f"\n== E10 — memory ablation (W={window}) ==")
    print(f"{'configuration':<24}{'peak state':>12}{'peak view':>12}"
          f"{'ms/1k':>10}")
    for label, state, view, ms in rows:
        print(f"{label:<24}{state:>12}{view:>12}{ms:>10.2f}")
    return rows


def e11_reeval_baseline() -> list[Measurement]:
    """Ablation: incremental maintenance vs from-scratch periodic
    re-evaluation (refresh interval = tuple inter-arrival, i.e. an always-
    fresh recompute, plus a relaxed 5%-of-window refresh)."""
    from repro.engine.reeval import ReEvaluationQuery

    gen = make_generator()
    results: list[Measurement] = []
    for window in windows():
        events = trace_for(window)
        plan = query1(gen, window, "telnet")
        upa = run_once(plan, events, ExecutionConfig(mode=Mode.UPA),
                       "UPA", window)
        results.append(upa)
        for interval, label in ((0.0, "REEVAL-fresh"),
                                (0.05 * window, "REEVAL-5pct")):
            reeval = ReEvaluationQuery(query1(gen, window, "telnet"),
                                       refresh_interval=interval)
            r = reeval.run(iter(events))
            results.append(Measurement(
                label=label, window=window, events=r.events_processed,
                time_ms_per_1000=r.time_per_1000() * 1000.0,
                touches_per_event=r.touches_per_event(),
                answer_size=sum(r.answer().values()),
            ))
    print_table("E11 — incremental (UPA) vs from-scratch re-evaluation, "
                "Query 1 (telnet)", results)
    return results


def e13_shard_scaling() -> list[Measurement]:
    """Shard-scaling sweep (extension): Queries 1, 3 and 4 under UPA with
    k key-routed shard pipelines on the forked process backend.

    ``k=1`` is the unsharded baseline (the sharded path short-circuits to
    the inline executor).  Every sharded run is asserted answer-identical
    to its baseline — the speedup is never bought with approximation.  On
    a single-core host the sweep degenerates into a measurement of the
    routing + IPC overhead; the per-core speedup claim is only meaningful
    (and only asserted, in ``benchmarks/test_e13_shard_scaling.py``) when
    ``os.cpu_count() >= 2``.
    """
    import os

    queries = (("Q1", lambda gen, w: query1(gen, w, "telnet")),
               ("Q3", query3),
               ("Q4", query4))
    results: list[Measurement] = []
    gen = make_generator()
    for window in windows():
        events = trace_for(window)
        for tag, plan_fn in queries:
            baseline_answer = None
            for shards in (1, 2, 4, 8):
                from repro import ContinuousQuery
                query = ContinuousQuery(plan_fn(gen, window),
                                        ExecutionConfig(mode=Mode.UPA))
                result = query.run(iter(events), batch=64, shards=shards,
                                   shard_backend="process")
                if shards == 1:
                    baseline_answer = result.answer()
                else:
                    assert result.answer() == baseline_answer, (
                        f"{tag} W={window} k={shards}: sharded answer "
                        "diverged from unsharded")
                results.append(Measurement(
                    label=f"{tag} k={shards}",
                    window=window,
                    events=result.events_processed,
                    time_ms_per_1000=result.time_per_1000() * 1000.0,
                    touches_per_event=result.touches_per_tuple(),
                    answer_size=sum(result.answer().values()),
                ))
    print_table(
        f"E13 — shard scaling (process backend, batch=64, "
        f"{os.cpu_count()} core(s))", results)
    return results


def _program_shapes():
    """(label, plan_fn, config_factory, traffic) per RESULTS.md cell."""
    upa = lambda **kw: ExecutionConfig(mode=Mode.UPA, **kw)  # noqa: E731
    neg = lambda **kw: ExecutionConfig(  # noqa: E731
        mode=Mode.UPA, str_storage=STR_NEGATIVE, **kw)
    return (
        ("E1", lambda gen, w: query1(gen, w, "ftp"), upa, BENCH_TRAFFIC),
        ("E2", lambda gen, w: query1(gen, w, "telnet"), upa, BENCH_TRAFFIC),
        ("E3-src", lambda gen, w: query2(gen, w, pairs=False), upa,
         BENCH_TRAFFIC),
        ("E3-srcdst", lambda gen, w: query2(gen, w, pairs=True), upa,
         BENCH_TRAFFIC),
        ("E4-neg", query3, neg,
         dataclasses.replace(BENCH_TRAFFIC, ip_overlap=1.0)),
        ("E5", query4, upa, BENCH_TRAFFIC),
    )


def measure_program_cell(label: str, window: float,
                         specialize: bool = True) -> Measurement:
    """One fresh run of a single ``program_overhead`` cell.

    The overhead tests use this for targeted re-measurement: on a shared
    1-vCPU runner a single cell can transiently spike (GC pause, host
    steal), and a spike is distinguishable from a real regression by
    simply measuring again — a regressed driver is slow every time.
    """
    for shape_label, plan_fn, config_factory, traffic in _program_shapes():
        if shape_label == label:
            gen = make_generator(traffic)
            events = trace_for(window, traffic)
            return run_once(plan_fn(gen, window), events,
                            config_factory(specialize=specialize),
                            label if specialize else f"{label}/interp",
                            window)
    raise KeyError(f"unknown program cell label: {label!r}")


def program_overhead() -> list[Measurement]:
    """Driver-overhead audit: the UPA cells of E1–E5 on the unified
    execution-program driver.

    The refactor replaced the hand-inlined event loop with a compiled
    ``ExecutionProgram`` interpreted by one ``Driver`` shared across all
    regimes; this experiment re-measures exactly the table cells whose
    pre-refactor times are recorded in RESULTS.md so the two can be
    compared (``benchmarks/test_program_overhead.py`` asserts the ratio
    stays within tolerance).  Labels match the RESULTS.md tables.

    Each cell is measured twice: under the default specialized driver
    (plain labels, e.g. ``E1``) and under the interpreted reference
    opt-out (``specialize=False``; labels suffixed ``/interp``, e.g.
    ``E1/interp``) — the test suite asserts the specialized cell is at
    least as fast as its interpreted twin.
    """
    results: list[Measurement] = []
    for label, plan_fn, config_factory, traffic in _program_shapes():
        gen = make_generator(traffic)
        for window in windows():
            events = trace_for(window, traffic)
            # One discarded warm-up per cell: the first run after a shape
            # or trace switch pays allocator/cache warm-up that would
            # otherwise be charged entirely to whichever driver is
            # measured first, biasing the paired comparison.  Each side
            # is then the minimum over interleaved rounds — noise (GC,
            # scheduler preemption) is strictly additive, so the minimum
            # is the tightest observable and keeps the pairing fair.
            run_once(plan_fn(gen, window), events, config_factory(),
                     label, window)
            spec_runs, interp_runs = [], []
            for _ in range(2):
                spec_runs.append(run_once(plan_fn(gen, window), events,
                                          config_factory(), label, window))
                interp_runs.append(run_once(
                    plan_fn(gen, window), events,
                    config_factory(specialize=False),
                    f"{label}/interp", window))
            results.append(min(spec_runs,
                               key=lambda m: m.time_ms_per_1000))
            results.append(min(interp_runs,
                               key=lambda m: m.time_ms_per_1000))
    print_table("PROGRAM — specialized vs interpreted UPA times on the "
                "E1–E5 cells", results)
    return results


def measure_columnar_cell(label: str, window: float,
                          columnar: bool = True) -> Measurement:
    """One fresh batch=64 run of a single ``columnar_speedup`` cell.

    Used by the speedup tests for targeted re-measurement, exactly like
    :func:`measure_program_cell`: a transient spike vanishes on retry, a
    real regression is slow every time.
    """
    for shape_label, plan_fn, config_factory, traffic in _program_shapes():
        if shape_label == label:
            gen = make_generator(traffic)
            events = trace_for(window, traffic)
            return run_once(plan_fn(gen, window), events,
                            config_factory(columnar=columnar),
                            label if columnar else f"{label}/row",
                            window, batch=64)
    raise KeyError(f"unknown columnar cell label: {label!r}")


#: Chunk sizes measured by the transport micro-cells (DEFAULT_CHUNK and the
#: batch=64 size the E13 sweep ships).
TRANSPORT_CHUNKS = (64, 256)

#: Shard count of the transport micro-cells (the E13 sweep's middle cell).
TRANSPORT_SHARDS = 4


def transport_cost() -> list[Measurement]:
    """Per-chunk shard-transport cost: fused routed shm codec vs pickle.

    Replays the E13 trace's global chunks through both transports end to
    end at :data:`TRANSPORT_SHARDS` shards — everything between "the
    parent holds a global chunk" and "every worker holds a processable
    :class:`ChunkTable`":

    * ``transport/shm``: ONE fused route+encode of the global chunk
      (``encode_routed`` — routing hash inlined, shared ts timeline,
      value columns concatenated shard-major, each value packed once, no
      per-shard event lists or Tick materialization), one segment write,
      then per shard: the tiny ``("cshard", nbytes, header)`` message over
      a real :func:`multiprocessing.Pipe` and ``decode_routed`` over the
      segment.
    * ``transport/pickle``: ``route_chunk`` (per-shard event lists with
      foreign arrivals re-materialized as ticks), then per shard:
      compact-encode the shard's events, send the full ``("chunk", ...)``
      message over the same real pipes, re-materialize the events, and
      columnarize them (``ChunkTable.from_events``) — exactly what the
      legacy path costs a columnar worker driver.

    Both sides pay genuine pipe syscalls and copies (one pipe pair per
    shard, drained synchronously per chunk, so in-flight bytes stay far
    below the pipe buffer), and both stop at the same observable state: a
    constructed :class:`ChunkTable` whose ``group_values`` answers on
    demand (``from_events`` gathers cached rows; ``decode_routed``
    decodes per-shard column slices).  The ``*/eager`` variants extend
    both sides through eager ``group_values`` of every owned stream, so
    the deferred string/number decoding the shm path pushes into the
    column phase is also on the record.  Costs are per 1000 *global*
    timeline rows (each shard sees the whole timeline, so global rows are
    the common denominator).  Each transport is the minimum over
    interleaved rounds; the ``window`` field carries the chunk size.
    ``benchmarks/test_columnar_speedup.py`` gates the lazy-boundary ratio
    at ``DEFAULT_CHUNK``.
    """
    import multiprocessing
    import time as _time

    from repro.core.sharding import analyze_partitionability
    from repro.engine.columnar import ChunkTable, decode_routed, \
        encode_routed
    from repro.engine.shard import ShardRouter, _decode_event, _encode_event
    from repro.workloads import query1

    gen = make_generator()
    part = analyze_partitionability(query1(gen, 400.0))
    events = [e for e in trace_for(400)]
    results: list[Measurement] = []
    pipes = [multiprocessing.Pipe() for _ in range(TRANSPORT_SHARDS)]
    try:
        for chunk_size in TRANSPORT_CHUNKS:
            router = ShardRouter(part.keys, TRANSPORT_SHARDS)
            key_index = router._index
            chunks = [events[i:i + chunk_size]
                      for i in range(0, len(events), chunk_size)]
            segment = bytearray(1 << 20)  # stand-in for the shm segment
            n = len(events)

            def shm_round(eager):
                start = _time.perf_counter()
                for chunk in chunks:
                    payload, headers, _arrivals, _broadcasts = encode_routed(
                        chunk, key_index, TRANSPORT_SHARDS)
                    nbytes = len(payload)
                    segment[:nbytes] = payload
                    for (parent, _), header in zip(pipes, headers):
                        parent.send(("cshard", nbytes, header))
                    for _, worker in pipes:
                        message = worker.recv()
                        table = decode_routed(
                            memoryview(segment)[:message[1]], message[2])
                        if eager:
                            for stream in table.groups():
                                table.group_values(stream)
                return _time.perf_counter() - start

            def pickle_round(eager):
                start = _time.perf_counter()
                for chunk in chunks:
                    per_shard = router.route_chunk(chunk)
                    for (parent, _), shard_events in zip(pipes, per_shard):
                        parent.send(
                            ("chunk",
                             [_encode_event(e) for e in shard_events]))
                    for _, worker in pipes:
                        message = worker.recv()
                        decoded = [_decode_event(r) for r in message[1]]
                        table = ChunkTable.from_events(decoded)
                        if eager:
                            for stream in table.groups():
                                table.group_values(stream)
                return _time.perf_counter() - start

            cells = (("transport/shm", shm_round, False),
                     ("transport/pickle", pickle_round, False),
                     ("transport/shm-eager", shm_round, True),
                     ("transport/pickle-eager", pickle_round, True))
            for _, fn, eager in cells:
                fn(eager)  # warm-up, discarded
            best: dict = {}
            for _ in range(3):  # interleaved rounds, min per cell
                for label, fn, eager in cells:
                    seconds = fn(eager)
                    if label not in best or seconds < best[label]:
                        best[label] = seconds
            for label, _, _ in cells:
                results.append(Measurement(
                    label=label, window=chunk_size, events=n,
                    time_ms_per_1000=best[label] / n * 1000.0 * 1000.0,
                    touches_per_event=0.0, answer_size=0))
    finally:
        for parent, worker in pipes:
            parent.close()
            worker.close()
    return results


def columnar_speedup() -> list[Measurement]:
    """Columnar chunk plane audit: E1–E5 UPA cells at batch=64, columnar
    on vs off, plus the shard-transport micro-cells.

    The chunk plane pivots each micro-batch into struct-of-arrays columns,
    bulk-inserts window state, and evaluates fused stateless prefixes
    column-wise; ``columnar=False`` runs the identical specialized driver
    row at a time.  Labels are the RESULTS.md cell names, with the row
    reference suffixed ``/row`` (mirroring ``program_overhead``'s
    ``/interp`` convention); ``benchmarks/test_columnar_speedup.py``
    asserts the geomean speedup and byte-identical answers.
    """
    results: list[Measurement] = []
    for label, plan_fn, config_factory, traffic in _program_shapes():
        gen = make_generator(traffic)
        for window in windows():
            events = trace_for(window, traffic)
            # Same measurement protocol as program_overhead: one discarded
            # warm-up, then the minimum over interleaved rounds per side.
            run_once(plan_fn(gen, window), events, config_factory(),
                     label, window, batch=64)
            col_runs, row_runs = [], []
            for _ in range(3):
                col_runs.append(run_once(
                    plan_fn(gen, window), events, config_factory(),
                    label, window, batch=64))
                row_runs.append(run_once(
                    plan_fn(gen, window), events,
                    config_factory(columnar=False),
                    f"{label}/row", window, batch=64))
            results.append(min(col_runs, key=lambda m: m.time_ms_per_1000))
            results.append(min(row_runs, key=lambda m: m.time_ms_per_1000))
    print_table("COLUMNAR — chunk plane on vs off (batch=64) on the "
                "E1–E5 cells", results)
    transport = transport_cost()
    print_table("COLUMNAR — per-chunk shard transport, shm codec vs "
                "pickle pipe", transport, row_key="chunk")
    return results + transport


EXPERIMENTS = {
    "e1": e1_query1_ftp,
    "e2": e2_query1_telnet,
    "e3": e3_query2_distinct,
    "e4": e4_query3_negation,
    "e5": e5_query4_distinct_join,
    "e6": e6_query5_rewritings,
    "e7": e7_partition_sweep,
    "e8": e8_cost_model,
    "e9": e9_lazy_interval,
    "e10": e10_memory,
    "e11": e11_reeval_baseline,
    "e13": e13_shard_scaling,
    "program": program_overhead,
    "columnar": columnar_speedup,
}
