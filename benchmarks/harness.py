"""Experiment runner: ``python -m benchmarks.harness [exp ...] [--quick]``.

Runs the requested experiments (or ``all``) and prints, for each, the table
the corresponding figure of the paper plots: average execution time per 1000
tuples (and deterministic state touches per tuple) for each strategy across
window sizes.  ``--quick`` shrinks the window sweep for CI-sized runs.
"""

from __future__ import annotations

import argparse
import os
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's experiments (see DESIGN.md)")
    parser.add_argument("experiments", nargs="*", default=["all"],
                        help="experiment ids (e1..e9) or 'all'")
    parser.add_argument("--quick", action="store_true",
                        help="small window sweep for CI-sized runs")
    args = parser.parse_args(argv)

    if args.quick:
        os.environ["REPRO_BENCH_QUICK"] = "1"

    # Import after the env var is set so common.windows() sees it.
    from .experiments import EXPERIMENTS

    requested = args.experiments or ["all"]
    if "all" in requested:
        requested = list(EXPERIMENTS)
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments {unknown}; "
                     f"choose from {sorted(EXPERIMENTS)} or 'all'")

    for exp in requested:
        EXPERIMENTS[exp]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
