"""Experiment runner: ``python -m benchmarks.harness [exp ...] [--quick]``.

Runs the requested experiments (or ``all``) and prints, for each, the table
the corresponding figure of the paper plots: average execution time per 1000
tuples (and deterministic state touches per tuple) for each strategy across
window sizes.  ``--quick`` shrinks the window sweep for CI-sized runs.

``--json-out DIR`` additionally writes one ``BENCH_<exp>.json`` document per
experiment so the perf trajectory can be tracked across commits.  Each
document carries the ``repro.bench/v1`` schema tag and one record per
measurement row: :class:`~benchmarks.common.Measurement` results are emitted
field-by-field; experiments that return bare tuples (e8, e10) are emitted as
``{"row": [...]}``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time

BENCH_SCHEMA = "repro.bench/v1"


def _bench_record(item: object) -> dict:
    """Normalise one measurement row into a JSON-safe record."""
    if dataclasses.is_dataclass(item) and not isinstance(item, type):
        return dataclasses.asdict(item)
    if isinstance(item, (tuple, list)):
        return {"row": list(item)}
    return {"value": item}


def bench_document(exp: str, results: object, *, quick: bool,
                   elapsed_seconds: float) -> dict:
    """Build the ``BENCH_<exp>.json`` document for one experiment run."""
    rows = results if isinstance(results, list) else []
    return {
        "schema": BENCH_SCHEMA,
        "experiment": exp,
        "quick": quick,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "elapsed_seconds": round(elapsed_seconds, 3),
        "records": [_bench_record(item) for item in rows],
    }


def write_bench_json(directory: str, exp: str, document: dict) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{exp}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's experiments (see DESIGN.md)")
    parser.add_argument("experiments", nargs="*", default=["all"],
                        help="experiment ids (e1..e13) or 'all'")
    parser.add_argument("--quick", action="store_true",
                        help="small window sweep for CI-sized runs")
    parser.add_argument("--json-out", metavar="DIR", default=None,
                        help="write BENCH_<exp>.json records to DIR")
    args = parser.parse_args(argv)

    if args.quick:
        os.environ["REPRO_BENCH_QUICK"] = "1"

    # Import after the env var is set so common.windows() sees it.
    from .experiments import EXPERIMENTS

    requested = args.experiments or ["all"]
    if "all" in requested:
        requested = list(EXPERIMENTS)
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments {unknown}; "
                     f"choose from {sorted(EXPERIMENTS)} or 'all'")

    for exp in requested:
        started = time.perf_counter()
        results = EXPERIMENTS[exp]()
        elapsed = time.perf_counter() - started
        if args.json_out is not None:
            document = bench_document(exp, results, quick=args.quick,
                                      elapsed_seconds=elapsed)
            path = write_bench_json(args.json_out, exp, document)
            print(f"  wrote {len(document['records'])} records to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
