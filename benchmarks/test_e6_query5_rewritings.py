"""E6 / Figure 14: Query 5 — negation pull-up versus push-down."""

import pytest

from repro import ExecutionConfig, Mode
from repro.engine.strategies import STR_NEGATIVE
from repro.workloads import query5_pullup, query5_pushdown

from .bench_util import bench

PLANS = [("pull-up", query5_pullup), ("push-down", query5_pushdown)]


@pytest.mark.parametrize("label,plan_fn", PLANS, ids=[p[0] for p in PLANS])
def test_query5_hybrid(benchmark, label, plan_fn):
    bench(benchmark, plan_fn,
          ExecutionConfig(mode=Mode.UPA, str_storage=STR_NEGATIVE))


@pytest.mark.parametrize("label,plan_fn", PLANS, ids=[p[0] for p in PLANS])
def test_query5_nt(benchmark, label, plan_fn):
    bench(benchmark, plan_fn, ExecutionConfig(mode=Mode.NT))
