"""Telemetry overhead benchmark: ``python -m benchmarks.overhead``.

Measures the enabled-telemetry cost on the E1–E5 workloads by running each
query twice per round — once armed and once disarmed onto the pristine
disabled code path — and comparing best-of-N times.  Two design points keep
this honest on noisy shared runners: the baseline executor is constructed
armed and then disarmed so both sides share an identical heap layout
(constructing it cold reads a 10-20% phantom diff that is pure allocator
layout), and best-of-N is used because timing noise is strictly additive,
making the minimum the tightest observable of each side's true cost.

The telemetry design goal (see DESIGN.md "Telemetry and metrics") is <5%
enabled overhead on these workloads; ``--gate PCT`` turns that bound into a
process exit code for CI.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time

BENCH_SCHEMA = "repro.bench/v1"


@dataclasses.dataclass
class OverheadRow:
    """One workload's telemetry-off vs telemetry-on comparison.

    ``overhead_pct`` compares best-of-N times.  Scheduler and neighbour
    noise is strictly additive, so the minimum over many interleaved runs
    is the tightest observable of each side's true cost; with the
    layout-matched baseline (see ``one_run``) the only systematic
    difference between the two minima is the instrumentation itself.
    """

    workload: str
    window: float
    events: int
    off_ms_per_1000: float
    on_ms_per_1000: float
    overhead_pct: float


def _workloads():
    from repro.workloads import query1, query2, query3, query4

    return [
        ("E1 Q1/ftp", lambda gen, w: query1(gen, w, "ftp")),
        ("E2 Q1/telnet", lambda gen, w: query1(gen, w, "telnet")),
        ("E3 Q2/distinct", query2),
        ("E4 Q3/negation", query3),
        ("E5 Q4/distinct-join", query4),
    ]


def measure_overhead(window: float | None = None, repeats: int = 5,
                     batch: int | None = 64,
                     only: list[str] | None = None) -> list[OverheadRow]:
    """Run E1–E5 with telemetry off and on; return per-workload rows.

    ``batch=64`` matches the batched benchmark configuration; pass
    ``batch=None`` to measure the per-tuple path instead.  ``only``
    restricts the run to the named workloads (used by the gate's
    re-measurement pass).
    """
    from repro import ContinuousQuery, ExecutionConfig, Mode

    from .common import make_generator, trace_for, windows

    window = window if window is not None else max(windows())
    gen = make_generator()
    events = trace_for(window)
    rows: list[OverheadRow] = []
    selected = [(label, factory) for label, factory in _workloads()
                if only is None or label in only]
    if only is not None:
        unknown = set(only) - {label for label, _f in selected}
        if unknown:
            known = ", ".join(label for label, _f in _workloads())
            raise SystemExit(f"unknown workload(s) {sorted(unknown)}; "
                             f"choose from: {known}")
    for label, plan_factory in selected:

        def one_run(telemetry: bool):
            # Both sides are CONSTRUCTED armed so their heap layout is
            # identical, and the baseline is then disarmed back onto the
            # pristine disabled code path.  Constructing the baseline with
            # telemetry=False instead perturbs the allocator enough that
            # this microbenchmark reads a 10-20% phantom difference on
            # small per-event costs — pure layout, not instrumentation
            # (the disabled path is byte-identical either way; see the
            # structural tests in tests/test_telemetry.py).
            plan = plan_factory(gen, window)
            config = ExecutionConfig(mode=Mode.UPA, telemetry=True)
            query = ContinuousQuery(plan, config)
            if not telemetry:
                query.executor.disarm_telemetry()
            result = query.run(iter(events), batch=batch)
            return result.time_per_1000() * 1000.0, result.events_processed

        one_run(False)  # warm-up: traces, caches, code objects
        best = {False: float("inf"), True: float("inf")}
        events_processed = 0
        for round_no in range(repeats):
            # Interleave off/on within each round, alternating the order,
            # so both minima sample the same machine conditions.
            order = (False, True) if round_no % 2 == 0 else (True, False)
            for telemetry in order:
                per_1000, events_processed = one_run(telemetry)
                best[telemetry] = min(best[telemetry], per_1000)
        rows.append(OverheadRow(
            workload=label, window=window, events=events_processed,
            off_ms_per_1000=best[False], on_ms_per_1000=best[True],
            overhead_pct=100.0 * (best[True] / best[False] - 1.0)))
    return rows


def print_overhead_table(rows: list[OverheadRow]) -> None:
    print("\n== Telemetry enabled-overhead (E1–E5, UPA, best-of-N) ==")
    print(f"{'workload':<22}{'off ms/1k':>12}{'on ms/1k':>12}"
          f"{'overhead':>10}")
    for row in rows:
        print(f"{row.workload:<22}{row.off_ms_per_1000:>12.3f}"
              f"{row.on_ms_per_1000:>12.3f}{row.overhead_pct:>9.1f}%")


def overhead_document(rows: list[OverheadRow], *, quick: bool) -> dict:
    records = []
    for row in rows:
        record = dataclasses.asdict(row)
        record["overhead_pct"] = round(row.overhead_pct, 2)
        records.append(record)
    return {
        "schema": BENCH_SCHEMA,
        "experiment": "telemetry_overhead",
        "quick": quick,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "records": records,
    }


def _remeasure_fresh(names: list[str], args) -> list[OverheadRow]:
    """Re-measure the named workloads in a fresh interpreter.

    Spawns ``python -m benchmarks.overhead --only <name> ... --json-out``
    with doubled repeats and parses the written document back into rows.
    """
    import subprocess
    import tempfile

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(root, "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    with tempfile.TemporaryDirectory() as tmp:
        cmd = [sys.executable, "-m", "benchmarks.overhead",
               "--repeats", str(args.repeats * 2), "--json-out", tmp]
        if args.quick:
            cmd.append("--quick")
        if args.per_tuple:
            cmd.append("--per-tuple")
        for name in names:
            cmd += ["--only", name]
        subprocess.run(cmd, check=True, cwd=root, env=env,
                       stdout=subprocess.DEVNULL)
        path = os.path.join(tmp, "BENCH_telemetry_overhead.json")
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    fields = [f.name for f in dataclasses.fields(OverheadRow)]
    return [OverheadRow(**{name: record[name] for name in fields})
            for record in document["records"]]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure telemetry-enabled overhead on E1-E5")
    parser.add_argument("--quick", action="store_true",
                        help="smaller trace for CI-sized runs")
    parser.add_argument("--repeats", type=int, default=5,
                        help="rounds per workload (best-of-N, default 5)")
    parser.add_argument("--per-tuple", action="store_true",
                        help="measure the per-tuple path instead of batch=64")
    parser.add_argument("--json-out", metavar="DIR", default=None,
                        help="write BENCH_telemetry_overhead.json to DIR")
    parser.add_argument("--gate", type=float, metavar="PCT", default=None,
                        help="exit 1 if any workload's overhead exceeds PCT")
    parser.add_argument("--only", action="append", default=None,
                        metavar="WORKLOAD", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.quick:
        os.environ["REPRO_BENCH_QUICK"] = "1"

    batch = None if args.per_tuple else 64
    rows = measure_overhead(repeats=args.repeats, batch=batch,
                            only=args.only)
    print_overhead_table(rows)

    if args.gate is not None:
        # A workload over the gate is re-measured in a FRESH interpreter
        # (--only, subprocess) and the attempt with the lowest overhead
        # ratio wins.  Two failure modes motivate this exact shape: a
        # long-lived process can enter a heap/GC state where one workload
        # persistently reads +10-15% regardless of repeats (a fresh heap
        # resets that), and minima must NOT be merged across processes —
        # if one off-side run catches a transient CPU-frequency burst,
        # the cross-process off-minimum is stuck low and the on side can
        # never match it, failing the gate on a ratio no single process
        # ever observed.  Real instrumentation overhead reproduces inside
        # every process, so taking the best per-process ratio keeps the
        # gate sound while making it robust to both artifacts.
        for retry in range(3):
            failing = [r for r in rows if r.overhead_pct > args.gate]
            if not failing:
                break
            print(f"  re-measuring {[r.workload for r in failing]} "
                  f"in a fresh process (gate retry {retry + 1})")
            remeasured = _remeasure_fresh(
                [r.workload for r in failing], args)
            by_name = {r.workload: r for r in remeasured}
            for i, row in enumerate(rows):
                fresh = by_name.get(row.workload)
                if fresh is not None and \
                        fresh.overhead_pct < row.overhead_pct:
                    rows[i] = fresh
            print_overhead_table(rows)
        worst = max(rows, key=lambda r: r.overhead_pct)

    if args.json_out is not None:
        os.makedirs(args.json_out, exist_ok=True)
        path = os.path.join(args.json_out, "BENCH_telemetry_overhead.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(overhead_document(rows, quick=args.quick), handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  wrote {len(rows)} records to {path}")

    if args.gate is not None:
        if worst.overhead_pct > args.gate:
            print(f"OVERHEAD GATE FAILED: {worst.workload} at "
                  f"{worst.overhead_pct:.1f}% > {args.gate:g}%")
            return 1
        print(f"overhead gate passed: worst {worst.workload} at "
              f"{worst.overhead_pct:.1f}% <= {args.gate:g}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
