"""The columnar chunk plane must repay its pivot — and say where.

The chunk plane (``engine/columnar.py``) pivots each micro-batch into
struct-of-arrays columns, bulk-inserts window state, evaluates fused
stateless prefixes column-wise, and ships shard chunks through a
zero-pickle shm codec.  These tests replay the E1–E5 UPA cells at
``batch=64`` columnar-on vs columnar-off (the identical specialized
driver, row at a time) and gate three claims:

* **prefix-bound cells** — where a selective stateless prefix carries
  the per-tuple work (E1's protocol filter drops ~90% of rows before
  any state is touched) the column kernels must win by at least
  ``REPRO_COLUMNAR_SPEEDUP_TOL`` (default 1.2x) in geomean;
* **aggregate** — over *all* cells, state-heavy ones included, the
  plane must still win in geomean by ``REPRO_COLUMNAR_AGGREGATE_TOL``
  (default 1.05x).  The full-matrix geomean measures ~1.13x on the dev
  container and is bounded well below the prefix-cell ratio by shared
  work: in E2/E4-neg, 50–80% of the runtime is operator/answer-view
  state maintenance that both drivers execute instruction-for-
  instruction identically (RESULTS.md, "columnar"), so the plane's
  driver savings are diluted per Amdahl.  The gate therefore proves
  "never a loss, a win everywhere, a big win where the mechanism
  applies" rather than a flat factor;
* **transport** — at ``DEFAULT_CHUNK`` the fused routed shm codec must
  beat the pickle pipe per global chunk by
  ``REPRO_COLUMNAR_TRANSPORT_TOL`` (default 2.0x) up to the lazy
  ChunkTable boundary both transports share.

Wall-clock gates use the noise-tolerant protocol of
``test_program_overhead.py``: each side is a minimum over interleaved
rounds, and a violating comparison is re-measured (both sides, paired)
before it counts — transient spikes vanish on retry, real regressions
are slow every time.  Exactness is not gated here: byte-identical
answers, output streams, counters and certificates across the columnar
axis are pinned by the golden matrix (``tests/test_goldens.py``).
"""

import json
import math
import os

import pytest

from repro.engine.shard import DEFAULT_CHUNK

from .common import quick_mode, windows
from .experiments import (
    EXPERIMENTS, columnar_speedup, measure_columnar_cell, transport_cost)
from .harness import BENCH_SCHEMA, bench_document, main as harness_main

#: Cells whose specialized plans are dominated by a selective stateless
#: prefix — the regime the column kernels target.  E1 (Q1/ftp) filters
#: ~90% of arrivals on a string-equality column before any window or
#: view state is touched.
PREFIX_CELLS = ("E1",)

#: All E-cell labels the sweep must cover (RESULTS.md names).
CELL_LABELS = ("E1", "E2", "E3-src", "E3-srcdst", "E4-neg", "E5")

#: Transport micro-cell labels (the ``window`` field carries chunk size).
TRANSPORT_LABELS = ("transport/shm", "transport/pickle",
                    "transport/shm-eager", "transport/pickle-eager")

SPEEDUP_TOL = float(os.environ.get("REPRO_COLUMNAR_SPEEDUP_TOL", "1.2"))
AGGREGATE_TOL = float(
    os.environ.get("REPRO_COLUMNAR_AGGREGATE_TOL", "1.05"))
TRANSPORT_TOL = float(
    os.environ.get("REPRO_COLUMNAR_TRANSPORT_TOL", "2.0"))

#: Per-cell slack for columnar-vs-row: a single cell may transiently
#: measure up to this factor of its row twin (GC, host steal) as long as
#: the paired re-measurement agrees and the aggregate still favours the
#: chunk plane.
CELL_TOL = float(os.environ.get("REPRO_COLUMNAR_CELL_TOL", "1.25"))

#: Quick-mode traces are too short (600–2400 events) to resolve the
#: strict factors on a shared 1-vCPU runner; floors are relaxed by this
#: divisor there (the full-window run keeps them strict).
QUICK_NOISE = 1.25


@pytest.fixture(scope="module")
def measurements():
    """One sweep per test session (the replay dominates the runtime)."""
    return columnar_speedup()


def _split(measurements):
    columnar = {(m.label, m.window): m for m in measurements
                if not m.label.startswith("transport/")
                and not m.label.endswith("/row")}
    row = {(m.label.removesuffix("/row"), m.window): m
           for m in measurements if m.label.endswith("/row")}
    transport = {(m.label, m.window): m for m in measurements
                 if m.label.startswith("transport/")}
    return columnar, row, transport


def _geomean(ratios):
    return math.exp(sum(map(math.log, ratios)) / len(ratios))


def _floor(tol):
    return tol / (QUICK_NOISE if quick_mode() else 1.0)


def _ratios(columnar, row):
    """(label, window) -> row_time / columnar_time (higher = plane wins)."""
    return {key: row[key].time_ms_per_1000 / m.time_ms_per_1000
            for key, m in columnar.items()}


def _remeasure(times, keys):
    """Paired fresh measurement of ``keys``; keeps the min per side."""
    for label, window in keys:
        fresh_col = measure_columnar_cell(label, window)
        fresh_row = measure_columnar_cell(label, window, columnar=False)
        col_t, row_t = times[(label, window)]
        times[(label, window)] = (
            min(col_t, fresh_col.time_ms_per_1000),
            min(row_t, fresh_row.time_ms_per_1000))


def _gate_geomean(columnar, row, keys, bar, what):
    """Assert geomean(row/col) over ``keys`` >= bar, with paired retry.

    On violation the worst cells are re-measured fresh (both sides, min
    per side across all measurements) up to twice before the assertion
    fires — same protocol as ``test_program_overhead.py``.
    """
    times = {key: (columnar[key].time_ms_per_1000,
                   row[key].time_ms_per_1000) for key in keys}
    for _retry in range(2):
        ratios = {key: row_t / col_t
                  for key, (col_t, row_t) in times.items()}
        if _geomean(ratios.values()) >= bar:
            break
        worst = sorted(ratios, key=ratios.get)[:4]
        _remeasure(times, worst)
    ratios = {key: row_t / col_t for key, (col_t, row_t) in times.items()}
    geomean = _geomean(ratios.values())
    detail = ", ".join(f"{label}@{window:g}={ratio:.2f}" for
                       (label, window), ratio in sorted(ratios.items()))
    assert geomean >= bar, (
        f"{what}: geomean {geomean:.3f}x < {bar:.3g}x ({detail})")


class TestColumnarSpeedup:
    def test_registered_with_harness(self):
        assert EXPERIMENTS["columnar"] is columnar_speedup

    def test_sweep_covers_every_cell_both_ways(self, measurements):
        columnar, row, transport = _split(measurements)
        assert set(columnar) == set(row)
        assert {label for label, _w in columnar} == set(CELL_LABELS)
        expected_windows = set(windows())
        for label in CELL_LABELS:
            got = {w for lbl, w in columnar if lbl == label}
            assert got == expected_windows, label
        assert {label for label, _w in transport} == set(TRANSPORT_LABELS)

    def test_prefix_bound_cells_meet_speedup_bar(self, measurements):
        """Where the fused column kernels carry the work, the plane must
        deliver the headline factor (measured 1.4–1.5x on E1)."""
        columnar, row, _ = _split(measurements)
        keys = [key for key in columnar if key[0] in PREFIX_CELLS]
        assert keys
        _gate_geomean(columnar, row, keys, _floor(SPEEDUP_TOL),
                      "prefix-bound cells")

    def test_aggregate_speedup_over_all_cells(self, measurements):
        """State-heavy cells dilute the win (shared stateful work is
        identical on both drivers) but must never erase it."""
        columnar, row, _ = _split(measurements)
        _gate_geomean(columnar, row, sorted(columnar), _floor(AGGREGATE_TOL),
                      "all E-cells")

    def test_no_cell_meaningfully_slower(self, measurements):
        """A violating cell gets one fresh paired re-measurement before
        it counts: a genuinely slower plane loses the re-match too."""
        columnar, row, _ = _split(measurements)
        limit = CELL_TOL * (QUICK_NOISE if quick_mode() else 1.0)
        violations = []
        for key in sorted(columnar):
            col_t = columnar[key].time_ms_per_1000
            row_t = row[key].time_ms_per_1000
            if col_t > limit * row_t:
                times = {key: (col_t, row_t)}
                _remeasure(times, [key])
                col_t, row_t = times[key]
            if col_t > limit * row_t:
                violations.append(
                    f"{key[0]} W={key[1]:g}: columnar {col_t:.2f} ms/1k "
                    f"> {limit:.3g}x row {row_t:.2f}")
        assert not violations, "\n".join(violations)

    def test_identical_answers_both_ways(self, measurements):
        """The two drivers replay identical traces; answer sizes and
        event counts must agree cell by cell (a fast driver that drops
        tuples is not an optimisation)."""
        columnar, row, _ = _split(measurements)
        for key, m in columnar.items():
            assert m.events > 0, key
            assert m.answer_size == row[key].answer_size, key
            assert m.events == row[key].events, key


class TestTransportCost:
    """E13 per-chunk transport: fused routed shm codec vs pickle pipe."""

    def test_transport_cells_cover_default_chunk(self, measurements):
        _, _, transport = _split(measurements)
        chunks = {w for label, w in transport if label == "transport/shm"}
        assert DEFAULT_CHUNK in chunks

    def test_shm_codec_beats_pickle_at_default_chunk(self, measurements):
        """The gated boundary is lazy on BOTH sides (a constructed
        ChunkTable answering ``group_values`` on demand); the recorded
        ``*/eager`` variants extend both sides through eager
        materialization.  On violation the whole micro-bench re-runs
        (it is cheap) keeping the min per cell."""
        _, _, transport = _split(measurements)
        best = {key: m.time_ms_per_1000 for key, m in transport.items()}
        bar = _floor(TRANSPORT_TOL)
        for _retry in range(2):
            shm = best[("transport/shm", DEFAULT_CHUNK)]
            pickle_t = best[("transport/pickle", DEFAULT_CHUNK)]
            if pickle_t / shm >= bar:
                break
            for m in transport_cost():
                key = (m.label, m.window)
                best[key] = min(best[key], m.time_ms_per_1000)
        shm = best[("transport/shm", DEFAULT_CHUNK)]
        pickle_t = best[("transport/pickle", DEFAULT_CHUNK)]
        assert pickle_t / shm >= bar, (
            f"transport at chunk={DEFAULT_CHUNK}: shm {shm:.2f} vs pickle "
            f"{pickle_t:.2f} ms/1k global rows = {pickle_t / shm:.2f}x "
            f"< {bar:.3g}x")


class TestCommittedColumnarBaseline:
    """The committed quick-mode baseline the CI trajectory gate uses."""

    BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baselines",
                                 "BENCH_columnar.json")

    def _baseline(self):
        with open(self.BASELINE_PATH, encoding="utf-8") as handle:
            return json.load(handle)

    def test_schema_and_coverage(self):
        document = self._baseline()
        assert document["schema"] == BENCH_SCHEMA
        assert document["experiment"] == "columnar"
        labels = {record["label"] for record in document["records"]}
        assert labels == (set(CELL_LABELS)
                          | {f"{label}/row" for label in CELL_LABELS}
                          | set(TRANSPORT_LABELS))
        for record in document["records"]:
            assert record["time_ms_per_1000"] > 0, record["label"]

    def test_baseline_passes_against_itself(self):
        from .baseline_compare import compare_documents
        document = self._baseline()
        assert compare_documents(document, document) == []


class TestBenchJsonEmission:
    def test_bench_document_schema(self, measurements):
        document = bench_document("columnar", measurements,
                                  quick=quick_mode(), elapsed_seconds=1.0)
        assert document["schema"] == BENCH_SCHEMA
        assert document["experiment"] == "columnar"
        assert len(document["records"]) == len(measurements)
        record = document["records"][0]
        assert {"label", "window", "time_ms_per_1000"} <= set(record)

    def test_harness_writes_bench_columnar_json(self, tmp_path, monkeypatch):
        """``python -m benchmarks.harness columnar --json-out DIR`` must
        emit a schema-valid BENCH_columnar.json."""
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        assert harness_main(["columnar", "--quick",
                             "--json-out", str(tmp_path)]) == 0
        path = tmp_path / "BENCH_columnar.json"
        document = json.loads(path.read_text())
        assert document["schema"] == BENCH_SCHEMA
        assert document["quick"] is True
        labels = {record["label"] for record in document["records"]}
        assert labels == (set(CELL_LABELS)
                          | {f"{label}/row" for label in CELL_LABELS}
                          | set(TRANSPORT_LABELS))
