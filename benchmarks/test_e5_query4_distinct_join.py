"""E5 / Figure 13: Query 4 (distinct source IPs on two links, joined)."""

import pytest

from repro import ExecutionConfig, Mode
from repro.workloads import query4

from .bench_util import bench


@pytest.mark.parametrize("mode", [Mode.NT, Mode.DIRECT, Mode.UPA],
                         ids=lambda m: m.value)
def test_query4_distinct_join(benchmark, mode):
    bench(benchmark, query4, ExecutionConfig(mode=mode))
