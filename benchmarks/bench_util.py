"""Helpers for the pytest-benchmark wrappers.

Each pytest benchmark module covers one experiment with a CI-sized
configuration (small window, one round — a full run already replays
thousands of events).  The heavyweight sweeps live in
``python -m benchmarks.harness``.
"""

from __future__ import annotations

from repro import ContinuousQuery, ExecutionConfig

from .common import make_generator, trace_for

BENCH_WINDOW = 150


def run_plan(plan, config: ExecutionConfig, batch: int | None = None):
    """Replay the shared trace through a freshly compiled query."""
    query = ContinuousQuery(plan, config)
    return query.run(iter(trace_for(BENCH_WINDOW)), batch=batch)


def bench(benchmark, plan_factory, config: ExecutionConfig,
          window: float = BENCH_WINDOW, batch: int | None = None):
    """Register one pedantic single-round benchmark and sanity-check it."""
    gen = make_generator()

    def target():
        return run_plan(plan_factory(gen, window), config, batch=batch)

    result = benchmark.pedantic(target, rounds=3, iterations=1)
    assert result.events_processed > 0
    return result
