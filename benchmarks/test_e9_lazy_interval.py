"""E9: lazy-expiration-interval sensitivity (Section 6.1)."""

import pytest

from repro import ExecutionConfig, Mode
from repro.workloads import query1

from .bench_util import BENCH_WINDOW, bench


@pytest.mark.parametrize("fraction", [0.01, 0.05, 0.20])
def test_lazy_interval(benchmark, fraction):
    bench(benchmark, lambda gen, w: query1(gen, w, "telnet"),
          ExecutionConfig(mode=Mode.UPA,
                          lazy_interval=fraction * BENCH_WINDOW))
