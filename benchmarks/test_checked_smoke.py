"""Smoke coverage for checked execution on the benchmark workload.

Runs the E1–E5 query set (Section 6.1) under ``checked=True`` on a small
trace and asserts the sanitizer's contract end to end: identical answers
and counters, every monitor armed, and zero lint diagnostics on the
pipelines the benchmarks execute.  The full transparency/sensitivity
matrix lives in ``tests/test_checked_execution.py``; the measured
overhead numbers are recorded in RESULTS.md (``checked`` section).
"""

from __future__ import annotations

import pytest

from repro import ContinuousQuery, ExecutionConfig, Mode
from repro.analysis.planlint import lint_compiled
from repro.workloads import (
    TrafficConfig,
    TrafficTraceGenerator,
    query1,
    query2,
    query3,
    query4,
)

SMOKE_TRAFFIC = TrafficConfig(n_links=4, n_src_ips=40, seed=7)
WINDOW = 20
N_EVENTS = 300

#: The E1–E5 plan set (E1/E2 are the two Query 1 predicates).
E_QUERIES = {
    "e1_q1_ftp": lambda gen: query1(gen, WINDOW, "ftp"),
    "e2_q1_telnet": lambda gen: query1(gen, WINDOW, "telnet"),
    "e3_q2_distinct": lambda gen: query2(gen, WINDOW),
    "e4_q3_negation": lambda gen: query3(gen, WINDOW),
    "e5_q4_distinct_join": lambda gen: query4(gen, WINDOW),
}


def _events():
    return list(TrafficTraceGenerator(SMOKE_TRAFFIC).events(N_EVENTS))


def _run(name, checked, batch=None):
    gen = TrafficTraceGenerator(SMOKE_TRAFFIC)
    plan = E_QUERIES[name](gen)
    query = ContinuousQuery(plan, ExecutionConfig(mode=Mode.UPA,
                                                  checked=checked))
    result = query.run(iter(_events()), batch=batch)
    return query, result


@pytest.mark.parametrize("name", sorted(E_QUERIES))
@pytest.mark.parametrize("batch", [None, 32])
def test_checked_matches_unchecked(name, batch):
    _plain_q, plain = _run(name, checked=False, batch=batch)
    checked_q, checked = _run(name, checked=True, batch=batch)
    assert checked.events_processed == N_EVENTS
    assert checked.answer() == plain.answer()
    assert checked.counters.snapshot() == plain.counters.snapshot()
    sanitizer = checked_q.compiled.sanitizer
    assert sanitizer is not None and sanitizer.monitored_ops > 0


@pytest.mark.parametrize("name", sorted(E_QUERIES))
def test_benchmark_pipelines_lint_clean(name):
    query, _result = _run(name, checked=True)
    report = lint_compiled(query.compiled)
    assert report.ok and not report.diagnostics, report.render()
