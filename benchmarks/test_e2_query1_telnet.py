"""E2 / Figure 10: Query 1 (high-output telnet join).

The headline comparison: the UPA run must beat DIRECT by a widening margin
as the window grows (asserted on deterministic touch counts in
test_shapes.py; here we record the wall-clock numbers).
"""

import pytest

from repro import ExecutionConfig, Mode
from repro.workloads import query1

from .bench_util import bench


@pytest.mark.parametrize("mode", [Mode.NT, Mode.DIRECT, Mode.UPA],
                         ids=lambda m: m.value)
def test_query1_telnet(benchmark, mode):
    bench(benchmark, lambda gen, w: query1(gen, w, "telnet"),
          ExecutionConfig(mode=mode))
