"""Tiny-trace smoke test for the micro-batch path (no benchmark fixture).

A fast sanity check that ``batch=N`` runs end to end on the benchmark
workload and agrees with per-tuple execution on the answer — the full
equivalence matrix lives in ``test_batched_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro import ContinuousQuery, ExecutionConfig, Mode
from repro.workloads import TrafficConfig, TrafficTraceGenerator, query1

SMOKE_TRAFFIC = TrafficConfig(n_links=4, n_src_ips=40, seed=7)
WINDOW = 20
N_EVENTS = 200


def _events():
    return list(TrafficTraceGenerator(SMOKE_TRAFFIC).events(N_EVENTS))


@pytest.mark.parametrize("batch", [None, 1, 4, 64, 10_000])
def test_smoke(batch):
    gen = TrafficTraceGenerator(SMOKE_TRAFFIC)
    plan = query1(gen, WINDOW, "ftp")
    query = ContinuousQuery(plan, ExecutionConfig(mode=Mode.UPA))
    result = query.run(iter(_events()), batch=batch)
    assert result.events_processed == N_EVENTS
    assert result.tuples_arrived == N_EVENTS
    assert result.answer() is not None


def test_smoke_batched_answer_matches_per_tuple():
    events = _events()
    answers = []
    for batch in (None, 16):
        gen = TrafficTraceGenerator(SMOKE_TRAFFIC)
        plan = query1(gen, WINDOW, "ftp")
        query = ContinuousQuery(plan, ExecutionConfig(mode=Mode.UPA))
        query.run(iter(events), batch=batch)
        answers.append(query.answer())
    assert answers[0] == answers[1]
