"""E7 / Figure 15: sensitivity to the number of state-buffer partitions."""

import pytest

from repro import ExecutionConfig, Mode
from repro.workloads import query1

from .bench_util import bench


@pytest.mark.parametrize("n_partitions", [1, 5, 10, 50])
def test_partition_count(benchmark, n_partitions):
    bench(benchmark, lambda gen, w: query1(gen, w, "telnet"),
          ExecutionConfig(mode=Mode.UPA, n_partitions=n_partitions))
