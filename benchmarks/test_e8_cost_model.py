"""E8: the cost model must rank Query 5's rewritings like measurement does."""

from repro import ExecutionConfig, Mode
from repro.core.cost import Catalog, CostModel
from repro.engine.strategies import STR_NEGATIVE
from repro.workloads import query5_pullup, query5_pushdown

from .common import make_generator, trace_for

#: Large enough that the rewritings' asymptotic ordering is unambiguous.
E8_WINDOW = 400


def test_cost_model_ranks_like_measurement(benchmark):
    gen = make_generator()
    catalog = Catalog(
        distinct_counts={(f"link{i}", attr): est
                         for i in range(4)
                         for attr, est in
                         gen.estimated_distincts(E8_WINDOW).items()},
        premature_frequency=0.5,
    )
    model = CostModel(catalog)

    def measure():
        from repro import ContinuousQuery
        rows = []
        events = trace_for(E8_WINDOW)
        for tag, plan_fn in (("pull-up", query5_pullup),
                             ("push-down", query5_pushdown)):
            plan = plan_fn(gen, E8_WINDOW)
            predicted = model.estimate(plan).total
            query = ContinuousQuery(plan, ExecutionConfig(
                mode=Mode.UPA, str_storage=STR_NEGATIVE))
            result = query.run(iter(events))
            rows.append((tag, predicted, result.touches_per_tuple()))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    predicted_order = [t for t, p, _m in sorted(rows, key=lambda r: r[1])]
    measured_order = [t for t, _p, m in sorted(rows, key=lambda r: r[2])]
    assert predicted_order == measured_order
