"""E3 / Figure 11: Query 2 — δ versus standard duplicate elimination."""

import pytest

from repro import ExecutionConfig, Mode
from repro.workloads import query2

from .bench_util import bench


@pytest.mark.parametrize("mode", [Mode.NT, Mode.DIRECT, Mode.UPA],
                         ids=lambda m: m.value)
def test_query2_distinct_src(benchmark, mode):
    bench(benchmark, lambda gen, w: query2(gen, w, pairs=False),
          ExecutionConfig(mode=mode))


@pytest.mark.parametrize("mode", [Mode.NT, Mode.DIRECT, Mode.UPA],
                         ids=lambda m: m.value)
def test_query2_distinct_pairs(benchmark, mode):
    bench(benchmark, lambda gen, w: query2(gen, w, pairs=True),
          ExecutionConfig(mode=mode))


@pytest.mark.parametrize("mode", [Mode.NT, Mode.DIRECT, Mode.UPA],
                         ids=lambda m: m.value)
def test_query2_distinct_src_batched(benchmark, mode):
    """Same workload through the micro-batch path (batch=64)."""
    bench(benchmark, lambda gen, w: query2(gen, w, pairs=False),
          ExecutionConfig(mode=mode), batch=64)
