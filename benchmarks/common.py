"""Shared machinery for the experiment harness and pytest benchmarks.

Every experiment follows the paper's protocol (Section 6.1): replay a fixed
trace through a query compiled under each strategy and report the average
execution time per 1000 tuples processed.  We additionally report
*state touches per tuple* — a deterministic work metric that exposes the
asymptotic behaviour independently of interpreter noise (see DESIGN.md).

Trace sizes are chosen so each run covers at least three window lengths
(fill + steady state), i.e. ``n_events = span_factor * window * n_links``
with the default one-tuple-per-link-per-time-unit rate.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable

from repro import ContinuousQuery, ExecutionConfig, Mode
from repro.core.plan import LogicalNode
from repro.workloads import TrafficConfig, TrafficTraceGenerator

#: Windows swept by the full harness; --quick and the pytest benchmarks use
#: a prefix of this list.
FULL_WINDOWS = (100, 200, 400, 800)
QUICK_WINDOWS = (50, 100, 200)
SPAN_FACTOR = 3  # trace covers three window lengths

#: Workload used by every experiment unless stated otherwise: a denser IP
#: pool than the generator default so joins have realistic fan-out.
BENCH_TRAFFIC = TrafficConfig(n_links=4, n_src_ips=150, seed=42)


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def windows() -> tuple[int, ...]:
    return QUICK_WINDOWS if quick_mode() else FULL_WINDOWS


_TRACE_CACHE: dict[tuple, list] = {}


def make_generator(config: TrafficConfig = BENCH_TRAFFIC) -> TrafficTraceGenerator:
    return TrafficTraceGenerator(config)


def _config_key(config: TrafficConfig) -> tuple:
    return (config.n_links, config.n_src_ips, config.n_dst_per_link,
            config.zipf_s, config.mean_interarrival, config.ip_overlap,
            tuple(sorted(config.protocol_mix.items())), config.seed)


def trace_for(window: float, config: TrafficConfig = BENCH_TRAFFIC) -> list:
    """The (cached) event list sized for ``window``."""
    n_events = int(SPAN_FACTOR * window * config.n_links
                   / config.mean_interarrival)
    key = (_config_key(config), n_events)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = list(TrafficTraceGenerator(config).events(n_events))
    return _TRACE_CACHE[key]


@dataclasses.dataclass
class Measurement:
    """One (strategy, window) cell of an experiment table."""

    label: str
    window: float
    events: int
    time_ms_per_1000: float
    touches_per_event: float
    answer_size: int

    def row(self) -> tuple:
        return (self.label, self.window, round(self.time_ms_per_1000, 2),
                round(self.touches_per_event, 1), self.answer_size)


def run_once(plan: LogicalNode, events: list,
             config: ExecutionConfig, label: str,
             window: float, batch: int | None = None) -> Measurement:
    """Compile and run one strategy over one trace.

    ``batch=N`` runs the micro-batch execution path (identical outputs,
    amortized expiration scheduling — see ``Executor.run``).
    """
    query = ContinuousQuery(plan, config)
    result = query.run(iter(events), batch=batch)
    return Measurement(
        label=label,
        window=window,
        events=result.events_processed,
        time_ms_per_1000=result.time_per_1000() * 1000.0,
        touches_per_event=result.touches_per_tuple(),
        answer_size=sum(result.answer().values()),
    )


def sweep(plan_factory: Callable[[TrafficTraceGenerator, float], LogicalNode],
          strategies: list[tuple[str, Callable[[], ExecutionConfig]]],
          window_sizes: tuple[float, ...] | None = None,
          config: TrafficConfig = BENCH_TRAFFIC) -> list[Measurement]:
    """Run every strategy over every window size; returns all measurements."""
    window_sizes = window_sizes if window_sizes is not None else windows()
    out: list[Measurement] = []
    gen = make_generator(config)
    for window in window_sizes:
        events = trace_for(window, config)
        for label, config_factory in strategies:
            plan = plan_factory(gen, window)
            out.append(run_once(plan, events, config_factory(), label,
                                window))
    return out


def standard_strategies(*modes: Mode,
                        **config_kwargs) -> list[tuple[str, Callable]]:
    """(label, config factory) pairs for plain NT / DIRECT / UPA runs."""
    return [
        (mode.value.upper(),
         lambda m=mode: ExecutionConfig(mode=m, **config_kwargs))
        for mode in modes
    ]


def print_table(title: str, measurements: list[Measurement],
                row_key: str = "window") -> None:
    """Render one experiment as the paper-style table."""
    print(f"\n== {title} ==")
    strategies = list(dict.fromkeys(m.label for m in measurements))
    keys = sorted({m.window for m in measurements})
    header = [row_key.ljust(10)]
    for s in strategies:
        header.append(f"{s} ms/1k".rjust(14))
        header.append(f"{s} tch/ev".rjust(14))
    print(" ".join(header))
    by_cell = {(m.window, m.label): m for m in measurements}
    for key in keys:
        cells = [f"{key:<10g}"]
        for s in strategies:
            m = by_cell.get((key, s))
            if m is None:
                cells.extend(["--".rjust(14)] * 2)
            else:
                cells.append(f"{m.time_ms_per_1000:14.2f}")
                cells.append(f"{m.touches_per_event:14.1f}")
        print(" ".join(cells))


def speedup_summary(measurements: list[Measurement], baseline: str,
                    contender: str) -> dict[float, float]:
    """Touch-count ratio baseline/contender per window (who wins, by how
    much) — the paper's shape claims are checked against this."""
    by_cell = {(m.window, m.label): m for m in measurements}
    out = {}
    for window in sorted({m.window for m in measurements}):
        base = by_cell.get((window, baseline))
        cont = by_cell.get((window, contender))
        if base and cont and cont.touches_per_event:
            out[window] = base.touches_per_event / cont.touches_per_event
    return out
