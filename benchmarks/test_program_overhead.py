"""The unified execution-program driver must not tax the hot loop.

The multi-layer refactor routed every regime (per-tuple, batched, shared,
sharded) through one compiled ``ExecutionProgram`` interpreted by a single
``Driver``.  These tests replay the UPA cells of E1–E5 on the new driver
and compare against the pre-refactor times recorded in RESULTS.md: the
program-driven loop must stay within a noise-tolerant factor of the old
hand-inlined one.  Wall-clock comparisons across machines and runs are
inherently noisy, so the tolerance is generous by default (2x) and
overridable via ``REPRO_PROGRAM_OVERHEAD_TOL`` for quieter hosts.

The sweep itself (and the ``BENCH_program.json`` emission) is exercised
through the same ``benchmarks.harness`` machinery the CLI uses.
"""

import json
import os

import pytest

from .common import quick_mode, windows
from .experiments import EXPERIMENTS, program_overhead
from .harness import BENCH_SCHEMA, bench_document, main as harness_main

#: Pre-refactor UPA ms-per-1000-tuples from RESULTS.md (full windows).
#: Keyed by the labels ``program_overhead`` emits.
PROGRAM_BASELINES = {
    "E1": {100: 2.29, 200: 2.34, 400: 2.38, 800: 2.83},
    "E2": {100: 5.06, 200: 7.07, 400: 10.99, 800: 24.34},
    "E3-src": {100: 4.27, 200: 4.34, 400: 4.08, 800: 4.89},
    "E3-srcdst": {100: 4.65, 200: 5.05, 400: 5.42, 800: 4.60},
    "E4-neg": {100: 4.37, 200: 5.65, 400: 4.73, 800: 5.32},
    "E5": {100: 14.57, 200: 7.66, 400: 7.69, 800: 8.27},
}

TOLERANCE = float(os.environ.get("REPRO_PROGRAM_OVERHEAD_TOL", "2.0"))


@pytest.fixture(scope="module")
def measurements():
    """One sweep per test session (the replay dominates the runtime)."""
    return program_overhead()


class TestProgramOverhead:
    def test_registered_with_harness(self):
        assert EXPERIMENTS["program"] is program_overhead

    def test_sweep_covers_every_baseline_shape(self, measurements):
        labels = {m.label for m in measurements}
        assert labels == set(PROGRAM_BASELINES)
        expected_windows = set(windows())
        for label in labels:
            got = {m.window for m in measurements if m.label == label}
            assert got == expected_windows, label

    def test_program_driver_within_tolerance_of_results_md(
            self, measurements):
        """Each measured cell vs its RESULTS.md counterpart.

        Quick mode's window 50 has no pre-refactor baseline and is
        skipped; everything else must be within ``TOLERANCE``x.
        """
        compared, violations = 0, []
        for m in measurements:
            baseline = PROGRAM_BASELINES[m.label].get(m.window)
            if baseline is None:
                continue
            compared += 1
            if m.time_ms_per_1000 > TOLERANCE * baseline:
                violations.append(
                    f"{m.label} W={m.window}: {m.time_ms_per_1000:.2f} "
                    f"ms/1k > {TOLERANCE}x baseline {baseline:.2f}")
        assert compared >= (12 if quick_mode() else 24)
        assert not violations, "\n".join(violations)

    def test_answers_nonempty(self, measurements):
        """Guard against measuring a loop that silently stopped producing
        results (a fast driver that drops tuples is not an optimisation)."""
        for m in measurements:
            assert m.events > 0, m.label
            assert m.answer_size >= 0


class TestBenchJsonEmission:
    def test_bench_document_schema(self, measurements):
        document = bench_document("program", measurements,
                                  quick=quick_mode(), elapsed_seconds=1.0)
        assert document["schema"] == BENCH_SCHEMA
        assert document["experiment"] == "program"
        assert len(document["records"]) == len(measurements)
        record = document["records"][0]
        assert {"label", "window", "time_ms_per_1000"} <= set(record)

    def test_harness_writes_bench_program_json(self, tmp_path, monkeypatch):
        """``python -m benchmarks.harness program --json-out DIR`` must
        emit a schema-valid BENCH_program.json."""
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        assert harness_main(["program", "--quick",
                             "--json-out", str(tmp_path)]) == 0
        path = tmp_path / "BENCH_program.json"
        document = json.loads(path.read_text())
        assert document["schema"] == BENCH_SCHEMA
        assert document["quick"] is True
        labels = {record["label"] for record in document["records"]}
        assert labels == set(PROGRAM_BASELINES)
