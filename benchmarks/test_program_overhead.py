"""The unified execution-program driver must not tax the hot loop.

The multi-layer refactor routed every regime (per-tuple, batched, shared,
sharded) through one compiled ``ExecutionProgram``, and the
specialization stage (``engine/specialize.py``) then compiled that IR
into monomorphic closures to repay the interpreter's overhead.  These
tests replay the UPA cells of E1–E5 on both drivers and assert:

* the (default) specialized driver stays within a noise-tolerant factor
  of the pre-refactor hand-inlined times recorded in RESULTS.md — the
  tolerance tightened from the interpreter era's 2.0x to 1.3x now that
  dispatch, routing and boundary maintenance are resolved at compile
  time (override via ``REPRO_PROGRAM_OVERHEAD_TOL``);
* on every cell, the specialized driver is at least as fast as the
  interpreted reference (self-gated per cell against host noise, like
  the E13 speedup assert; per-cell slack via
  ``REPRO_SPECIALIZE_SPEEDUP_TOL``), and strictly no slower in
  aggregate.

The sweep itself (and the ``BENCH_program.json`` emission) is exercised
through the same ``benchmarks.harness`` machinery the CLI uses.
"""

import json
import os

import pytest

from .common import quick_mode, windows
from .experiments import (
    EXPERIMENTS, measure_program_cell, program_overhead)
from .harness import BENCH_SCHEMA, bench_document, main as harness_main

#: Pre-refactor UPA ms-per-1000-tuples from RESULTS.md (full windows).
#: Keyed by the labels ``program_overhead`` emits for the (default)
#: specialized driver; the interpreted twins carry a ``/interp`` suffix.
PROGRAM_BASELINES = {
    "E1": {100: 2.29, 200: 2.34, 400: 2.38, 800: 2.83},
    "E2": {100: 5.06, 200: 7.07, 400: 10.99, 800: 24.34},
    "E3-src": {100: 4.27, 200: 4.34, 400: 4.08, 800: 4.89},
    "E3-srcdst": {100: 4.65, 200: 5.05, 400: 5.42, 800: 4.60},
    "E4-neg": {100: 4.37, 200: 5.65, 400: 4.73, 800: 5.32},
    "E5": {100: 14.57, 200: 7.66, 400: 7.69, 800: 8.27},
}

TOLERANCE = float(os.environ.get("REPRO_PROGRAM_OVERHEAD_TOL", "1.3"))

#: Quick mode replays shortened traces whose per-cell wall-clock swings
#: 20-30% between identical runs on a 1-vCPU runner — too coarse to
#: resolve a 1.3x bound (same resolution limit benchmarks/overhead.py
#: documents for its 5% gate).  Full-window runs keep the strict factor.
QUICK_NOISE = 1.25

#: Per-cell slack for specialized-vs-interpreted: wall-clock comparisons
#: of single cells are noisy (GC, frequency scaling), so an individual
#: cell may measure up to this factor of its interpreted twin as long as
#: the aggregate over all cells still favours the specialized driver.
SPECIALIZE_TOL = float(
    os.environ.get("REPRO_SPECIALIZE_SPEEDUP_TOL", "1.25"))


@pytest.fixture(scope="module")
def measurements():
    """One sweep per test session (the replay dominates the runtime)."""
    return program_overhead()


def _split(measurements):
    specialized = {(m.label, m.window): m for m in measurements
                   if not m.label.endswith("/interp")}
    interpreted = {(m.label.removesuffix("/interp"), m.window): m
                   for m in measurements if m.label.endswith("/interp")}
    return specialized, interpreted


class TestProgramOverhead:
    def test_registered_with_harness(self):
        assert EXPERIMENTS["program"] is program_overhead

    def test_sweep_covers_every_baseline_shape(self, measurements):
        labels = {m.label for m in measurements}
        assert labels == set(PROGRAM_BASELINES) | {
            f"{label}/interp" for label in PROGRAM_BASELINES}
        expected_windows = set(windows())
        for label in labels:
            got = {m.window for m in measurements if m.label == label}
            assert got == expected_windows, label

    def test_program_driver_within_tolerance_of_results_md(
            self, measurements):
        """Each specialized cell vs its RESULTS.md counterpart.

        Quick mode's window 50 has no pre-refactor baseline and is
        skipped, as are the ``/interp`` reference cells (the interpreter
        keeps its own 2x headroom by construction); everything else must
        be within ``TOLERANCE``x (``QUICK_NOISE``-relaxed on quick-mode
        traces, which are too short to resolve the strict factor).

        A cell over the limit is re-measured up to twice before it
        counts as a violation: transient spikes (GC pause, host steal on
        a shared 1-vCPU runner) vanish on retry, real regressions are
        slow every time.
        """
        limit = TOLERANCE * (QUICK_NOISE if quick_mode() else 1.0)
        compared, violations = 0, []
        for m in measurements:
            baseline = PROGRAM_BASELINES.get(m.label, {}).get(m.window)
            if baseline is None:
                continue
            compared += 1
            best = m.time_ms_per_1000
            for _retry in range(2):
                if best <= limit * baseline:
                    break
                fresh = measure_program_cell(m.label, m.window)
                best = min(best, fresh.time_ms_per_1000)
            if best > limit * baseline:
                violations.append(
                    f"{m.label} W={m.window}: {best:.2f} "
                    f"ms/1k > {limit:.3g}x baseline {baseline:.2f}")
        assert compared >= (12 if quick_mode() else 24)
        assert not violations, "\n".join(violations)

    def test_answers_nonempty(self, measurements):
        """Guard against measuring a loop that silently stopped producing
        results (a fast driver that drops tuples is not an optimisation)."""
        for m in measurements:
            assert m.events > 0, m.label
            assert m.answer_size >= 0


class TestSpecializedVsInterpreted:
    """The tentpole's acceptance bar: specialization must repay itself on
    every E1–E5 UPA cell, not just on a favourable aggregate."""

    def test_every_cell_measured_both_ways(self, measurements):
        specialized, interpreted = _split(measurements)
        assert set(specialized) == set(interpreted)
        assert {label for label, _w in specialized} \
            == set(PROGRAM_BASELINES)

    def test_specialized_at_least_as_fast_per_cell(self, measurements):
        """A violating cell gets one fresh paired re-measurement before
        it counts: transient spikes on the specialized side vanish on
        retry, a genuinely slower driver loses the re-match too."""
        specialized, interpreted = _split(measurements)
        violations = []
        for key, spec in sorted(specialized.items()):
            interp = interpreted[key]
            spec_time = spec.time_ms_per_1000
            interp_time = interp.time_ms_per_1000
            if spec_time > SPECIALIZE_TOL * interp_time:
                label, window = key
                respec = measure_program_cell(label, window)
                reinterp = measure_program_cell(label, window,
                                                specialize=False)
                spec_time = min(spec_time, respec.time_ms_per_1000)
                interp_time = min(interp_time,
                                  reinterp.time_ms_per_1000)
            if spec_time > SPECIALIZE_TOL * interp_time:
                violations.append(
                    f"{key[0]} W={key[1]}: specialized "
                    f"{spec_time:.2f} ms/1k > "
                    f"{SPECIALIZE_TOL}x interpreted "
                    f"{interp_time:.2f}")
        assert not violations, "\n".join(violations)

    def test_specialized_faster_in_aggregate(self, measurements):
        """Summed over all cells, the compiled closures must beat the
        interpreter outright — per-cell noise tolerance must not hide a
        net regression."""
        specialized, interpreted = _split(measurements)
        spec_total = sum(m.time_ms_per_1000 for m in specialized.values())
        interp_total = sum(m.time_ms_per_1000
                           for m in interpreted.values())
        assert spec_total <= interp_total, (
            f"specialized total {spec_total:.2f} ms/1k vs interpreted "
            f"{interp_total:.2f}")

    def test_identical_answers_both_ways(self, measurements):
        """The two drivers replay identical traces; their answer sizes and
        event counts must agree cell by cell."""
        specialized, interpreted = _split(measurements)
        for key, spec in specialized.items():
            interp = interpreted[key]
            assert spec.answer_size == interp.answer_size, key
            assert spec.events == interp.events, key


class TestBenchJsonEmission:
    def test_bench_document_schema(self, measurements):
        document = bench_document("program", measurements,
                                  quick=quick_mode(), elapsed_seconds=1.0)
        assert document["schema"] == BENCH_SCHEMA
        assert document["experiment"] == "program"
        assert len(document["records"]) == len(measurements)
        record = document["records"][0]
        assert {"label", "window", "time_ms_per_1000"} <= set(record)

    def test_harness_writes_bench_program_json(self, tmp_path, monkeypatch):
        """``python -m benchmarks.harness program --json-out DIR`` must
        emit a schema-valid BENCH_program.json."""
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        assert harness_main(["program", "--quick",
                             "--json-out", str(tmp_path)]) == 0
        path = tmp_path / "BENCH_program.json"
        document = json.loads(path.read_text())
        assert document["schema"] == BENCH_SCHEMA
        assert document["quick"] is True
        labels = {record["label"] for record in document["records"]}
        assert labels == set(PROGRAM_BASELINES) | {
            f"{label}/interp" for label in PROGRAM_BASELINES}
