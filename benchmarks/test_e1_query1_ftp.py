"""E1 / Figure 9: Query 1 (selective ftp join) under all three strategies."""

import pytest

from repro import ExecutionConfig, Mode
from repro.workloads import query1

from .bench_util import bench


@pytest.mark.parametrize("mode", [Mode.NT, Mode.DIRECT, Mode.UPA],
                         ids=lambda m: m.value)
def test_query1_ftp(benchmark, mode):
    bench(benchmark, lambda gen, w: query1(gen, w, "ftp"),
          ExecutionConfig(mode=mode))


@pytest.mark.parametrize("mode", [Mode.NT, Mode.DIRECT, Mode.UPA],
                         ids=lambda m: m.value)
def test_query1_ftp_batched(benchmark, mode):
    """Same workload through the micro-batch path (batch=64)."""
    bench(benchmark, lambda gen, w: query1(gen, w, "ftp"),
          ExecutionConfig(mode=mode), batch=64)
