"""E13: key-sharded parallel execution — scaling and exactness.

Two layers:

* **Exactness is always asserted**, on any machine: sharded answers equal
  unsharded ones for every (query, k, backend) cell, per the equivalence
  contract in ``tests/test_sharded.py``.
* **The speedup claim is gated on available parallelism.**  The process
  backend forks one worker per shard; on a single-core host the sweep
  measures routing + IPC overhead, not scaling, so the ≥1.5× assertion at
  k=4 only runs when ``os.cpu_count() >= 4``.  RESULTS.md records what the
  measurement host actually showed.

The full window sweep lives in ``python -m benchmarks.harness e13``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import ContinuousQuery, ExecutionConfig, Mode
from repro.workloads import query1, query3, query4

from .bench_util import BENCH_WINDOW, run_plan
from .common import make_generator, trace_for

QUERIES = [
    ("q1", lambda gen, w: query1(gen, w, "telnet")),
    ("q3", query3),
    ("q4", query4),
]


def _run(plan_fn, shards, backend="process", batch=64):
    gen = make_generator()
    query = ContinuousQuery(plan_fn(gen, BENCH_WINDOW),
                            ExecutionConfig(mode=Mode.UPA))
    return query.run(iter(trace_for(BENCH_WINDOW)), batch=batch,
                     shards=shards, shard_backend=backend)


@pytest.mark.parametrize("tag,plan_fn", QUERIES, ids=[q[0] for q in QUERIES])
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_answers_exact(tag, plan_fn, shards):
    """Answer equality on the process backend — asserted on every host."""
    base = _run(plan_fn, shards=1)
    sharded = _run(plan_fn, shards=shards)
    assert sharded.fallback_reason is None
    assert sharded.shards == shards
    assert sharded.answer() == base.answer()
    assert sharded.tuples_arrived == base.tuples_arrived


@pytest.mark.parametrize("tag,plan_fn", QUERIES, ids=[q[0] for q in QUERIES])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_shard_sweep(benchmark, tag, plan_fn, shards):
    """The scaling sweep itself (k=1 is the inline baseline)."""
    result = benchmark.pedantic(lambda: _run(plan_fn, shards=shards),
                                rounds=3, iterations=1)
    assert result.events_processed > 0


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup needs >= 4 cores; this host has "
                           f"{os.cpu_count()} (exactness is still asserted "
                           "above)")
def test_speedup_at_k4():
    """On a multi-core host, Query 1 (telnet, batch=64) at k=4 must beat
    the k=1 inline baseline by >= 1.5x wall clock."""
    plan_fn = QUERIES[0][1]
    _run(plan_fn, shards=1)  # warm the trace cache out of the timing
    start = time.perf_counter()
    base = _run(plan_fn, shards=1)
    t1 = time.perf_counter() - start
    start = time.perf_counter()
    sharded = _run(plan_fn, shards=4)
    t4 = time.perf_counter() - start
    assert sharded.answer() == base.answer()
    assert t1 / t4 >= 1.5, f"k=4 speedup {t1 / t4:.2f}x < 1.5x"
