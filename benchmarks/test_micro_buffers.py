"""Microbenchmarks of the state-buffer primitives.

These isolate the data-structure claims from query processing: FIFO pops vs
list scans vs partition drops for expiration, and hash vs positional
deletion.  They complement the query-level experiments — if a buffer
regresses, these localize it.
"""

import pytest

from repro import Tuple
from repro.buffers import FifoBuffer, HashBuffer, ListBuffer, PartitionedBuffer

N = 2_000
SPAN = 100.0


def _tuples():
    # exp spread uniformly over the span, arrival order == exp order.
    return [Tuple((i % 50,), i * SPAN / N, (i + 1) * SPAN / N)
            for i in range(N)]


def _key(t):
    return t.values[0]


def _fill(buffer):
    for t in _tuples():
        buffer.insert(t)
    return buffer


@pytest.mark.parametrize("factory,label", [
    (lambda: FifoBuffer(_key), "fifo"),
    (lambda: ListBuffer(_key), "list"),
    (lambda: PartitionedBuffer(SPAN, 10, _key), "partitioned"),
    (lambda: HashBuffer(_key), "hash"),
], ids=["fifo", "list", "partitioned", "hash"])
def test_insert_throughput(benchmark, factory, label):
    benchmark.pedantic(lambda: _fill(factory()), rounds=3, iterations=1)


@pytest.mark.parametrize("factory", [
    lambda: FifoBuffer(_key),
    lambda: ListBuffer(_key),
    lambda: PartitionedBuffer(SPAN, 10, _key),
], ids=["fifo", "list", "partitioned"])
def test_incremental_purge(benchmark, factory):
    """Expire the buffer in 100 small steps — the steady-state pattern."""

    def run():
        buffer = _fill(factory())
        removed = 0
        for step in range(100):
            removed += len(buffer.purge_expired(SPAN * (step + 1) / 100))
        assert removed == N
        return buffer

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("factory", [
    lambda: HashBuffer(_key),
    lambda: PartitionedBuffer(SPAN, 10, _key),
    lambda: ListBuffer(_key),
], ids=["hash", "partitioned", "list"])
def test_targeted_deletion(benchmark, factory):
    """Delete 200 known tuples by negative-tuple matching."""
    victims = _tuples()[::10][:200]

    def run():
        buffer = _fill(factory())
        for victim in victims:
            assert buffer.delete(victim.negate())
        return buffer

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("factory", [
    lambda: FifoBuffer(_key),
    lambda: HashBuffer(_key),
    lambda: PartitionedBuffer(SPAN, 10, _key),
], ids=["fifo", "hash", "partitioned"])
def test_probe_throughput(benchmark, factory):
    buffer = _fill(factory())

    def run():
        hits = 0
        for key in range(50):
            hits += len(buffer.probe(key, now=0.0))
        assert hits == N
        return hits

    benchmark.pedantic(run, rounds=3, iterations=2)


@pytest.mark.parametrize("factory", [
    lambda: HashBuffer(_key),
    lambda: PartitionedBuffer(SPAN, 10, _key),
], ids=["hash", "partitioned"])
def test_probe_hot_loop(benchmark, factory):
    """The join inner loop: thousands of consecutive probes on a warm
    buffer.  This is the path whose counter bookkeeping was hoisted out of
    the per-tuple iteration (one ``counters`` resolution and one touch add
    per probe rather than per examined tuple); the bulk-probe rate here is
    the direct measure of that win."""
    buffer = _fill(factory())
    keys = [i % 50 for i in range(5_000)]

    def run():
        probe = buffer.probe
        hits = 0
        for key in keys:
            hits += len(probe(key, now=0.0))
        assert hits == 5_000 * (N // 50)
        return hits

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("factory", [
    lambda: HashBuffer(_key),
    lambda: ListBuffer(_key),
], ids=["hash", "list"])
def test_live_scan_throughput(benchmark, factory):
    """Full liveness scans (the direct approach's re-evaluation pattern)
    through the hoisted ``live()`` iterator."""
    buffer = _fill(factory())

    def run():
        seen = sum(1 for _ in buffer.live(now=0.0))
        assert seen == N
        return seen

    benchmark.pedantic(run, rounds=3, iterations=2)
