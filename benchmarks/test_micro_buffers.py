"""Microbenchmarks of the state-buffer primitives.

These isolate the data-structure claims from query processing: FIFO pops vs
list scans vs partition drops for expiration, and hash vs positional
deletion.  They complement the query-level experiments — if a buffer
regresses, these localize it.
"""

import pytest

from repro import Tuple
from repro.buffers import FifoBuffer, HashBuffer, ListBuffer, PartitionedBuffer

N = 2_000
SPAN = 100.0


def _tuples():
    # exp spread uniformly over the span, arrival order == exp order.
    return [Tuple((i % 50,), i * SPAN / N, (i + 1) * SPAN / N)
            for i in range(N)]


def _key(t):
    return t.values[0]


def _fill(buffer):
    for t in _tuples():
        buffer.insert(t)
    return buffer


@pytest.mark.parametrize("factory,label", [
    (lambda: FifoBuffer(_key), "fifo"),
    (lambda: ListBuffer(_key), "list"),
    (lambda: PartitionedBuffer(SPAN, 10, _key), "partitioned"),
    (lambda: HashBuffer(_key), "hash"),
], ids=["fifo", "list", "partitioned", "hash"])
def test_insert_throughput(benchmark, factory, label):
    benchmark.pedantic(lambda: _fill(factory()), rounds=3, iterations=1)


@pytest.mark.parametrize("factory,label", [
    (lambda: FifoBuffer(_key), "fifo"),
    (lambda: ListBuffer(_key), "list"),
    (lambda: PartitionedBuffer(SPAN, 10, _key), "partitioned"),
    (lambda: HashBuffer(_key), "hash"),
], ids=["fifo", "list", "partitioned", "hash"])
def test_insert_many_throughput(benchmark, factory, label):
    """The columnar chunk plane's bulk path: one `insert_many` per chunk
    (validation pass, single extend, counters charged in bulk) instead of
    N scalar inserts.  Compare against ``test_insert_throughput`` — the
    gap is the hoisting win the chunk plane banks on."""
    chunks = [_tuples()[i:i + 64] for i in range(0, N, 64)]

    def run():
        buffer = factory()
        insert_many = buffer.insert_many
        for chunk in chunks:
            insert_many(chunk)
        assert len(buffer) == N
        return buffer

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_insert_many_matches_scalar_inserts_exactly():
    """Correctness guard under the bulk benchmark: contents, order and
    counter charges of `insert_many` are identical to N scalar inserts."""
    from repro.core.metrics import Counters

    for factory in (lambda c: FifoBuffer(_key, c),
                    lambda c: ListBuffer(_key, c),
                    lambda c: PartitionedBuffer(SPAN, 10, _key, c),
                    lambda c: HashBuffer(_key, c)):
        scalar_counters, bulk_counters = Counters(), Counters()
        scalar, bulk = factory(scalar_counters), factory(bulk_counters)
        for t in _tuples():
            scalar.insert(t)
        for start in range(0, N, 64):
            bulk.insert_many(_tuples()[start:start + 64])
        assert list(scalar) == list(bulk), type(scalar).__name__
        assert scalar_counters.snapshot() == bulk_counters.snapshot(), \
            type(scalar).__name__


def test_group_store_replace_many(benchmark):
    """GroupStore's bulk path: per-chunk aggregate refresh with the dict
    lookups hoisted — counter-identical to scalar replaces."""
    from repro.buffers.groupstore import GroupStore
    from repro.core.metrics import Counters

    updates = [(i % 50, Tuple((i % 50, i), float(i), float(i) + SPAN))
               for i in range(N)]
    chunks = [updates[i:i + 64] for i in range(0, N, 64)]

    scalar_counters, bulk_counters = Counters(), Counters()
    scalar, bulk = GroupStore(scalar_counters), GroupStore(bulk_counters)
    for key, result in updates:
        scalar.replace(key, result)
    for chunk in chunks:
        bulk.replace_many(chunk)
    assert scalar.snapshot() == bulk.snapshot()
    assert scalar_counters.snapshot() == bulk_counters.snapshot()

    def run():
        store = GroupStore()
        replace_many = store.replace_many
        for chunk in chunks:
            replace_many(chunk)
        assert len(store) == 50
        return store

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("factory", [
    lambda: FifoBuffer(_key),
    lambda: ListBuffer(_key),
    lambda: PartitionedBuffer(SPAN, 10, _key),
], ids=["fifo", "list", "partitioned"])
def test_incremental_purge(benchmark, factory):
    """Expire the buffer in 100 small steps — the steady-state pattern."""

    def run():
        buffer = _fill(factory())
        removed = 0
        for step in range(100):
            removed += len(buffer.purge_expired(SPAN * (step + 1) / 100))
        assert removed == N
        return buffer

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("factory", [
    lambda: HashBuffer(_key),
    lambda: PartitionedBuffer(SPAN, 10, _key),
    lambda: ListBuffer(_key),
], ids=["hash", "partitioned", "list"])
def test_targeted_deletion(benchmark, factory):
    """Delete 200 known tuples by negative-tuple matching."""
    victims = _tuples()[::10][:200]

    def run():
        buffer = _fill(factory())
        for victim in victims:
            assert buffer.delete(victim.negate())
        return buffer

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("factory", [
    lambda: FifoBuffer(_key),
    lambda: HashBuffer(_key),
    lambda: PartitionedBuffer(SPAN, 10, _key),
], ids=["fifo", "hash", "partitioned"])
def test_probe_throughput(benchmark, factory):
    buffer = _fill(factory())

    def run():
        hits = 0
        for key in range(50):
            hits += len(buffer.probe(key, now=0.0))
        assert hits == N
        return hits

    benchmark.pedantic(run, rounds=3, iterations=2)


@pytest.mark.parametrize("factory", [
    lambda: HashBuffer(_key),
    lambda: PartitionedBuffer(SPAN, 10, _key),
], ids=["hash", "partitioned"])
def test_probe_hot_loop(benchmark, factory):
    """The join inner loop: thousands of consecutive probes on a warm
    buffer.  This is the path whose counter bookkeeping was hoisted out of
    the per-tuple iteration (one ``counters`` resolution and one touch add
    per probe rather than per examined tuple); the bulk-probe rate here is
    the direct measure of that win."""
    buffer = _fill(factory())
    keys = [i % 50 for i in range(5_000)]

    def run():
        probe = buffer.probe
        hits = 0
        for key in keys:
            hits += len(probe(key, now=0.0))
        assert hits == 5_000 * (N // 50)
        return hits

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("factory", [
    lambda: HashBuffer(_key),
    lambda: ListBuffer(_key),
], ids=["hash", "list"])
def test_live_scan_throughput(benchmark, factory):
    """Full liveness scans (the direct approach's re-evaluation pattern)
    through the hoisted ``live()`` iterator."""
    buffer = _fill(factory())

    def run():
        seen = sum(1 for _ in buffer.live(now=0.0))
        assert seen == N
        return seen

    benchmark.pedantic(run, rounds=3, iterations=2)
